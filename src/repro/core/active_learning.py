"""Adaptive experimental design (the paper's future-work extension).

The paper notes that because the server drives the training progress, "the
experimental design could be made adaptive to support active learning
strategies" and that adaptive training "could increase generalization
capabilities while requiring fewer simulations to run.  It is only possible in
the online context the framework provides."

This module implements that extension in its simplest defensible form:

* :class:`AdaptiveSampler` keeps a pool of candidate parameter vectors, scores
  them with the current surrogate against a cheap reference (the solver on a
  coarse grid or a provided error oracle), and proposes the next batch of
  client parameters where the surrogate error is largest (greedy max-error
  acquisition with an exploration fraction).
* :func:`run_adaptive_rounds` alternates training rounds and adaptive
  proposal, mirroring the fused train/steer workflow the related-work section
  describes (Colmena/DeepDriveMD style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.sampling.base import ParameterSpace, Sampler
from repro.sampling.monte_carlo import MonteCarloSampler
from repro.utils.seeding import derive_rng

Array = np.ndarray

#: Callable scoring a batch of parameter vectors: higher = more informative.
ErrorOracle = Callable[[Array], Array]


@dataclass
class AcquisitionResult:
    """Outcome of one adaptive proposal round."""

    proposed: Array
    scores: Array
    explored: int
    exploited: int

    @property
    def num_proposed(self) -> int:
        return int(self.proposed.shape[0])


class AdaptiveSampler(Sampler):
    """Greedy max-error acquisition over a candidate pool, with exploration.

    Parameters
    ----------
    space:
        Parameter box to sample from.
    error_oracle:
        Function returning a per-candidate informativeness score (typically the
        surrogate's validation error at those parameters).  When ``None`` the
        sampler degenerates to Monte Carlo (useful before the first round).
    candidate_pool_size:
        Number of uniform candidates scored per proposal.
    exploration_fraction:
        Fraction of each proposed batch drawn uniformly at random regardless of
        the scores, to keep covering the space (avoids the catastrophic
        forgetting the paper worries about when the buffer only sees a narrow
        region).
    seed:
        Seed of the candidate generator and the exploration draws.
    """

    def __init__(
        self,
        space: ParameterSpace,
        error_oracle: Optional[ErrorOracle] = None,
        candidate_pool_size: int = 256,
        exploration_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        super().__init__(space, seed=seed)
        if candidate_pool_size <= 0:
            raise ValueError("candidate_pool_size must be positive")
        if not 0.0 <= exploration_fraction <= 1.0:
            raise ValueError("exploration_fraction must be in [0, 1]")
        self.error_oracle = error_oracle
        self.candidate_pool_size = int(candidate_pool_size)
        self.exploration_fraction = float(exploration_fraction)
        self._uniform = MonteCarloSampler(space, seed=seed)
        self._rng = derive_rng("adaptive-sampler", seed)
        self.history: List[AcquisitionResult] = []

    # -------------------------------------------------------------- sampling
    def _unit_samples(self, count: int) -> Array:  # pragma: no cover - not used
        raise NotImplementedError("AdaptiveSampler overrides sample() directly")

    def sample(self, count: int) -> Array:
        """Propose ``count`` parameter vectors for the next client round."""
        if count <= 0:
            raise ValueError("count must be positive")
        result = self.propose(count)
        self._drawn += count
        return result.proposed

    def propose(self, count: int) -> AcquisitionResult:
        """Score a candidate pool and pick the next batch of parameters."""
        if self.error_oracle is None:
            proposed = self._uniform.sample(count)
            result = AcquisitionResult(
                proposed=proposed,
                scores=np.zeros(count),
                explored=count,
                exploited=0,
            )
            self.history.append(result)
            return result

        candidates = self._uniform.sample(self.candidate_pool_size)
        scores = np.asarray(self.error_oracle(candidates), dtype=float).ravel()
        if scores.shape[0] != candidates.shape[0]:
            raise ValueError(
                f"error oracle returned {scores.shape[0]} scores for "
                f"{candidates.shape[0]} candidates"
            )

        num_explore = int(round(count * self.exploration_fraction))
        num_exploit = count - num_explore
        order = np.argsort(scores)[::-1]
        exploit_rows = candidates[order[:num_exploit]]
        explore_rows = (
            self._uniform.sample(num_explore) if num_explore > 0 else np.empty((0, self.space.dimension))
        )
        proposed = np.vstack([exploit_rows, explore_rows]) if num_explore else exploit_rows
        # Shuffle so exploited and explored members are interleaved across clients.
        permutation = self._rng.permutation(proposed.shape[0])
        result = AcquisitionResult(
            proposed=proposed[permutation],
            scores=scores[order[:num_exploit]],
            explored=num_explore,
            exploited=num_exploit,
        )
        self.history.append(result)
        return result


def surrogate_error_oracle(
    model,
    reference: Callable[[Array], Array],
    time_values: Sequence[float],
) -> ErrorOracle:
    """Build an error oracle comparing the surrogate against a cheap reference.

    ``reference(parameters)`` must return the stacked flattened fields of one
    simulation at ``time_values`` (for instance a coarse-grid solver); the
    oracle returns the mean squared surrogate error per candidate.
    """

    def oracle(candidates: Array) -> Array:
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float32))
        errors = np.empty(candidates.shape[0])
        for index, row in enumerate(candidates):
            truth = np.asarray(reference(row), dtype=np.float32)
            inputs = np.stack(
                [np.concatenate([row, [np.float32(t)]]) for t in time_values]
            ).astype(np.float32)
            predictions = model.forward(inputs)
            errors[index] = float(np.mean((predictions - truth.reshape(len(time_values), -1)) ** 2))
        return errors

    return oracle


@dataclass
class AdaptiveRoundReport:
    """Summary of one train/propose round."""

    round_index: int
    proposed_parameters: Array
    mean_candidate_error: float
    max_candidate_error: float


def run_adaptive_rounds(
    sampler: AdaptiveSampler,
    train_round: Callable[[Array], None],
    num_rounds: int,
    clients_per_round: int,
) -> List[AdaptiveRoundReport]:
    """Alternate adaptive proposal and training for ``num_rounds`` rounds.

    ``train_round(parameters)`` runs one online study (or a batch of clients)
    on the proposed parameters and updates whatever state the error oracle
    reads (typically the surrogate weights).
    """
    if num_rounds <= 0 or clients_per_round <= 0:
        raise ValueError("num_rounds and clients_per_round must be positive")
    reports: List[AdaptiveRoundReport] = []
    for round_index in range(num_rounds):
        result = sampler.propose(clients_per_round)
        train_round(result.proposed)
        scores = result.scores
        reports.append(
            AdaptiveRoundReport(
                round_index=round_index,
                proposed_parameters=result.proposed,
                mean_candidate_error=float(scores.mean()) if scores.size else 0.0,
                max_candidate_error=float(scores.max()) if scores.size else 0.0,
            )
        )
    return reports
