"""Result containers returned by the study drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.metrics import TrainingMetrics, throughput_from_summary

if TYPE_CHECKING:  # annotation-only: a runtime import would close the
    # core ⇄ server import cycle (server.serving is importable on its own).
    from repro.launcher.launcher import LauncherReport
    from repro.offline.trainer import OfflineTrainingResult
    from repro.server.server import ServerResult


@dataclass
class OnlineStudyResult:
    """Everything produced by one online study run."""

    server: ServerResult
    launcher: LauncherReport
    total_elapsed: float
    unique_samples: int
    dataset_bytes: int
    config_summary: Dict[str, object] = field(default_factory=dict)

    @property
    def metrics(self) -> TrainingMetrics:
        return self.server.metrics

    @property
    def best_validation_loss(self) -> float:
        return self.server.best_validation_loss

    @property
    def total_throughput(self) -> float:
        """Aggregate samples/second processed across all server ranks."""
        return throughput_from_summary(self.server.summary)

    @property
    def mean_throughput(self) -> float:
        """Deprecated alias of :attr:`total_throughput` (it sums over ranks)."""
        return self.total_throughput

    @property
    def total_batches(self) -> int:
        return int(self.server.summary.get("total_batches", 0))

    @property
    def dataset_gigabytes(self) -> float:
        return self.dataset_bytes / 1e9

    def table_row(self, label: str = "online") -> Dict[str, object]:
        """One row of the paper-style comparison tables."""
        return {
            "setting": label,
            "total_hours": self.total_elapsed / 3600.0,
            "generation_hours": 0.0,  # generation overlaps training online
            "dataset_gb": self.dataset_gigabytes,
            "unique_samples": self.unique_samples,
            "min_mse": self.best_validation_loss,
            "throughput": self.mean_throughput,
            "batches": self.total_batches,
        }


@dataclass
class OfflineStudyResult:
    """Everything produced by one offline baseline run."""

    training: OfflineTrainingResult
    generation_elapsed: float
    training_elapsed: float
    unique_samples: int
    dataset_bytes: int
    store_dir: Optional[str] = None
    config_summary: Dict[str, object] = field(default_factory=dict)

    @property
    def metrics(self) -> TrainingMetrics:
        return self.training.metrics

    @property
    def best_validation_loss(self) -> float:
        return self.training.best_validation_loss

    @property
    def total_throughput(self) -> float:
        return throughput_from_summary(self.training.summary)

    @property
    def mean_throughput(self) -> float:
        """Deprecated alias of :attr:`total_throughput` (it sums over ranks)."""
        return self.total_throughput

    @property
    def total_elapsed(self) -> float:
        return self.generation_elapsed + self.training_elapsed

    @property
    def dataset_gigabytes(self) -> float:
        return self.dataset_bytes / 1e9

    def table_row(self, label: str = "offline") -> Dict[str, object]:
        return {
            "setting": label,
            "total_hours": self.total_elapsed / 3600.0,
            "generation_hours": self.generation_elapsed / 3600.0,
            "dataset_gb": self.dataset_gigabytes,
            "unique_samples": self.unique_samples,
            "min_mse": self.best_validation_loss,
            "throughput": self.mean_throughput,
            "batches": int(self.training.summary.get("total_batches", 0)),
        }


def improvement_percent(baseline_mse: float, improved_mse: float) -> float:
    """Relative improvement of the validation MSE, as the paper's "+47 %" figure."""
    if not np.isfinite(baseline_mse) or baseline_mse <= 0:
        return float("nan")
    return 100.0 * (baseline_mse - improved_mse) / baseline_mse
