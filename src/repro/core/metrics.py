"""Metrics recorded during training: throughput, losses, buffer population.

The paper's Figure 2 plots the training throughput (samples/second processed
by the GPU, computed over 10 successive batches every 10 batches) together
with the buffer population; Figures 4-6 plot training and validation losses.
These classes record exactly those series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ThroughputMeter:
    """Sliding-window throughput of the training loop.

    Call :meth:`record_batch` after each trained batch; every ``window``
    batches the meter computes the samples/second achieved over the window and
    appends it to the series (mirroring the paper's measurement protocol).
    """

    window: int = 10
    clock: Optional[object] = None
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    _window_start: Optional[float] = None
    _batches_in_window: int = 0
    _samples_in_window: int = 0
    total_samples: int = 0
    total_batches: int = 0
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock.now()  # type: ignore[attr-defined]
        return time.monotonic()

    def start(self) -> None:
        """Open the measurement clock before the first batch is trained.

        Called by the training loop once the first batch has been *drawn*
        (data is available) but before it is trained, so the first window
        spans ``window`` full batch intervals without including the initial
        buffer threshold-fill wait.  Without it, the clock can only start at
        the *completion* of the first batch, and the first reported value
        covers ``window`` batches over ``window - 1`` intervals (~1/window
        overestimate).  Idempotent: later calls are no-ops.
        """
        if self.start_time is not None and self._window_start is not None:
            return
        now = self._now()
        if self.start_time is None:
            self.start_time = now
        if self._window_start is None:
            self._window_start = now

    def record_batch(self, batch_size: int) -> Optional[float]:
        """Record one trained batch; returns the throughput if a window closed."""
        now = self._now()
        if self.start_time is None:
            self.start_time = now
        if self._window_start is None:
            # start() was not called: fall back to opening the window here
            # (first-window bias documented in start()).
            self._window_start = self.start_time
        self._batches_in_window += 1
        self._samples_in_window += int(batch_size)
        self.total_batches += 1
        self.total_samples += int(batch_size)
        self.end_time = now
        if self._batches_in_window >= self.window:
            elapsed = max(now - self._window_start, 1e-9)
            throughput = self._samples_in_window / elapsed
            self.times.append(now)
            self.values.append(throughput)
            self._window_start = now
            self._batches_in_window = 0
            self._samples_in_window = 0
            return throughput
        return None

    def mean_throughput(self) -> float:
        """Overall mean throughput (total samples / total wall time)."""
        if self.start_time is None or self.end_time is None or self.end_time <= self.start_time:
            return 0.0
        return self.total_samples / (self.end_time - self.start_time)

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, samples/sec) arrays of the windowed measurements."""
        return np.asarray(self.times), np.asarray(self.values)


@dataclass
class LossHistory:
    """Training and validation loss curves indexed by batch count and samples seen."""

    train_batches: List[int] = field(default_factory=list)
    train_samples: List[int] = field(default_factory=list)
    train_losses: List[float] = field(default_factory=list)
    val_batches: List[int] = field(default_factory=list)
    val_samples: List[int] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)

    def record_train(self, batch_index: int, samples_seen: int, loss: float) -> None:
        self.train_batches.append(int(batch_index))
        self.train_samples.append(int(samples_seen))
        self.train_losses.append(float(loss))

    def record_validation(self, batch_index: int, samples_seen: int, loss: float) -> None:
        self.val_batches.append(int(batch_index))
        self.val_samples.append(int(samples_seen))
        self.val_losses.append(float(loss))

    @property
    def best_validation_loss(self) -> float:
        """Minimum validation loss reached ("Min. MSE" column of Table 1)."""
        return float(np.min(self.val_losses)) if self.val_losses else float("nan")

    @property
    def final_validation_loss(self) -> float:
        return float(self.val_losses[-1]) if self.val_losses else float("nan")

    @property
    def final_training_loss(self) -> float:
        return float(self.train_losses[-1]) if self.train_losses else float("nan")

    def smoothed_train_losses(self, window: int = 20) -> np.ndarray:
        """Moving average of the training loss (for plotting/regression checks)."""
        losses = np.asarray(self.train_losses, dtype=float)
        if losses.size == 0 or window <= 1:
            return losses
        kernel = np.ones(min(window, losses.size)) / min(window, losses.size)
        return np.convolve(losses, kernel, mode="valid")


@dataclass
class BufferPopulationSeries:
    """Time series of a buffer's population (and unseen count for the Reservoir)."""

    times: List[float] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)
    unseen: List[int] = field(default_factory=list)

    def record(self, timestamp: float, size: int, unseen: int | None = None) -> None:
        self.times.append(float(timestamp))
        self.sizes.append(int(size))
        self.unseen.append(int(unseen if unseen is not None else size))

    def max_population(self) -> int:
        return max(self.sizes, default=0)

    def mean_population(self) -> float:
        return float(np.mean(self.sizes)) if self.sizes else 0.0


@dataclass
class TrainingMetrics:
    """Everything recorded by one training worker (one server rank)."""

    rank: int = 0
    throughput: ThroughputMeter = field(default_factory=ThroughputMeter)
    losses: LossHistory = field(default_factory=LossHistory)
    buffer_population: BufferPopulationSeries = field(default_factory=BufferPopulationSeries)
    occurrence_histogram: Dict[int, int] = field(default_factory=dict)
    batches_trained: int = 0
    samples_trained: int = 0
    wall_time: float = 0.0

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by the experiment tables."""
        return {
            "rank": self.rank,
            "batches_trained": self.batches_trained,
            "samples_trained": self.samples_trained,
            "mean_throughput": self.throughput.mean_throughput(),
            "best_val_mse": self.losses.best_validation_loss,
            "final_val_mse": self.losses.final_validation_loss,
            "final_train_loss": self.losses.final_training_loss,
            "wall_time": self.wall_time,
        }


def throughput_from_summary(summary: Dict[str, float]) -> float:
    """Study-level throughput from a summary dict, accepting the legacy key.

    ``merge_worker_metrics`` writes ``total_throughput`` (plus the deprecated
    ``mean_throughput`` alias); summaries recorded before the rename only
    carry the old key.  Every reader goes through this helper so the
    backward-compat rule lives in one place.
    """
    return float(summary.get("total_throughput", summary.get("mean_throughput", 0.0)))


def _best_loss(values: List[float]) -> float:
    """The lowest non-NaN value, or the first value if all are NaN."""
    finite = [v for v in values if not np.isnan(v)]
    return float(min(finite)) if finite else float(values[0])


def merge_worker_metrics(per_rank: List[TrainingMetrics],
                         num_shards: int = 1) -> Dict[str, float]:
    """Aggregate per-rank metrics into study-level numbers.

    Throughput sums across ranks (each rank feeds its own GPU), so it is
    reported as ``total_throughput``; ``mean_throughput`` is kept as a
    deprecated alias with the same value because earlier versions (mis)named
    the sum that way.  Losses come from rank 0 (replicas are identical after
    all-reduce); batch counts sum.

    With ``num_shards > 1`` the list is shard-major (all ranks of shard 0,
    then shard 1, ...): the totals still sum over every rank of every
    shard, while the validation numbers come from the best shard's rank 0 —
    shards train independent replicas on hash-partitioned client streams,
    so the study reports the best surrogate the cluster produced (matching
    the model :class:`repro.server.sharding.ShardManager` returns).
    """
    if not per_rank:
        return {}
    num_shards = max(1, int(num_shards))
    ranks_per_shard = max(1, len(per_rank) // num_shards)
    lead_ranks = per_rank[::ranks_per_shard][:num_shards]
    total_throughput = float(sum(m.throughput.mean_throughput() for m in per_rank))
    return {
        "num_ranks": float(len(per_rank)),
        "num_shards": float(num_shards),
        "total_batches": float(sum(m.batches_trained for m in per_rank)),
        "total_samples": float(sum(m.samples_trained for m in per_rank)),
        "total_throughput": total_throughput,
        # Deprecated alias, see docstring.
        "mean_throughput": total_throughput,
        "best_val_mse": _best_loss([m.losses.best_validation_loss for m in lead_ranks]),
        "final_val_mse": _best_loss([m.losses.final_validation_loss for m in lead_ranks]),
        "wall_time": max(m.wall_time for m in per_rank),
    }
