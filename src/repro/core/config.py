"""Study-level configuration objects."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.parallel.transport import TransportConfig
from repro.server.trainer import TrainerConfig
from repro.utils.exceptions import ConfigurationError


@dataclass
class OnlineStudyConfig:
    """Configuration of an online (streamed) training study.

    The defaults are a scaled-down version of the paper's Section 4.3-4.5
    setup: clients submitted in series, per-rank Reservoir buffers with a
    capacity of roughly a quarter of the unique samples, batch size 10,
    Adam(1e-3) with the learning rate halved on a fixed sample schedule.
    """

    # Ensemble.
    num_simulations: int = 50
    series_sizes: Optional[Sequence[int]] = None
    max_concurrent_clients: int = 8
    inter_series_delay: float = 0.0
    client_step_delay: float = 0.0
    sampler: str = "monte_carlo"

    # Server.
    num_ranks: int = 1
    buffer_kind: str = "reservoir"
    buffer_capacity: int = 250
    buffer_threshold: int = 50
    batch_size: int = 10
    validation_interval: int = 100
    max_batches: Optional[int] = None
    learning_rate: float = 1e-3
    lr_step_samples: int = 10_000
    lr_gamma: float = 0.5
    lr_min: float = 2.5e-4

    #: Transport: a backend name (``"inproc"``, ``"mp"``, ``"shm"``,
    #: ``"tcp"``) or a full :class:`repro.parallel.transport.TransportConfig`
    #: carrying the backend-specific options (shm ring geometry, tcp
    #: address/compression).  After construction this is always the backend
    #: *name*; the normalised object lives in :attr:`transport_config`.
    transport: Union[str, TransportConfig] = "inproc"
    #: Deprecated flat transport knobs, kept as aliases of the corresponding
    #: ``TransportConfig`` fields (``batch_size``, ``queue_size``,
    #: ``shm.ring_slots``, ``shm.ring_slot_bytes``, ``process_timeout``,
    #: ``heartbeat_timeout``).  ``None`` means "inherit from
    #: :attr:`transport`"; an explicit value overrides it and emits a
    #: ``DeprecationWarning``.  After construction each holds its resolved
    #: value, so existing readers keep working.
    transport_batch_size: Optional[int] = None
    transport_queue_size: Optional[int] = None
    ring_slots: Optional[int] = None
    ring_slot_bytes: Optional[int] = None
    client_process_timeout: Optional[float] = None
    client_heartbeat_timeout: Optional[float] = None
    #: Sharded serving tier: run this many independent server shards with
    #: clients routed by consistent hashing on client id (see
    #: ``docs/scaling.md``).  A convenience alias of
    #: ``TransportConfig.shard.num_shards`` — not deprecated; ``None``
    #: inherits from :attr:`transport`.  After construction it holds the
    #: resolved shard count.
    num_shards: Optional[int] = None
    #: The normalised transport configuration — the single object the study
    #: driver hands to ``make_transport`` and the launcher.  Derived in
    #: ``__post_init__`` from :attr:`transport` plus any flat overrides.
    transport_config: TransportConfig = field(init=False, repr=False, compare=False)

    # Misc.
    batch_compute_delay: float = 0.0
    seed: int = 0
    checkpoint_dir: Optional[Path] = None
    checkpoint_interval: int = 0
    track_occurrences: bool = True

    def __post_init__(self) -> None:
        if self.num_simulations <= 0:
            raise ConfigurationError("num_simulations must be positive")
        if self.num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        if self.buffer_capacity <= 0:
            raise ConfigurationError("buffer_capacity must be positive")
        if self.buffer_threshold < 0 or self.buffer_threshold > self.buffer_capacity:
            raise ConfigurationError("buffer_threshold must be in [0, capacity]")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.max_concurrent_clients <= 0:
            raise ConfigurationError("max_concurrent_clients must be positive")
        self._normalize_transport()

    def _normalize_transport(self) -> None:
        """Fold the flat legacy knobs and :attr:`transport` into one config.

        ``TransportConfig.resolve`` is the single normalization point (it
        also validates every transport field); the resolved values are
        written back to the flat aliases so legacy readers see the effective
        configuration, and :attr:`transport` is collapsed to the backend
        name for summaries and backend dispatch.
        """
        flat = {
            "transport_batch_size": self.transport_batch_size,
            "transport_queue_size": self.transport_queue_size,
            "ring_slots": self.ring_slots,
            "ring_slot_bytes": self.ring_slot_bytes,
            "client_process_timeout": self.client_process_timeout,
            "client_heartbeat_timeout": self.client_heartbeat_timeout,
        }
        used = sorted(name for name, value in flat.items() if value is not None)
        if used:
            warnings.warn(
                f"flat transport field(s) {', '.join(used)} are deprecated; "
                "pass transport=TransportConfig(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        resolved = TransportConfig.resolve(self.transport, num_shards=self.num_shards,
                                           **flat)
        self.transport_config = resolved
        self.transport = resolved.backend
        self.num_shards = resolved.shard.num_shards
        self.transport_batch_size = resolved.batch_size
        self.transport_queue_size = resolved.queue_size
        self.ring_slots = resolved.shm.ring_slots
        self.ring_slot_bytes = resolved.shm.ring_slot_bytes
        self.client_process_timeout = resolved.process_timeout
        self.client_heartbeat_timeout = resolved.heartbeat_timeout

    @property
    def lr_step_batches(self) -> int:
        """Learning-rate decay period in batches per rank.

        The paper keeps the decay tied to the number of *samples* seen, so with
        more GPUs the per-rank batch period shrinks: 1 000/500/250 batches for
        1/2/4 GPUs at batch size 10 and a 10 000-sample period.
        """
        per_batch = self.batch_size * self.num_ranks
        return max(1, self.lr_step_samples // per_batch)

    def trainer_config(self) -> TrainerConfig:
        """Build the per-rank trainer configuration."""
        return TrainerConfig(
            batch_size=self.batch_size,
            validation_interval=self.validation_interval,
            max_batches=self.max_batches,
            track_occurrences=self.track_occurrences,
            batch_compute_delay=self.batch_compute_delay,
        )


@dataclass
class OfflineStudyConfig:
    """Configuration of the offline (file-based, multi-epoch) baseline."""

    num_simulations: int = 50
    num_epochs: int = 1
    num_ranks: int = 1
    batch_size: int = 10
    num_workers: int = 0
    learning_rate: float = 1e-3
    lr_step_samples: int = 10_000
    lr_gamma: float = 0.5
    lr_min: float = 2.5e-4
    validation_interval: int = 100
    max_batches: Optional[int] = None
    sampler: str = "monte_carlo"
    generation_workers: int = 4
    io_delay_per_sample: float = 0.0
    batch_compute_delay: float = 0.0
    seed: int = 0
    store_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.num_simulations <= 0:
            raise ConfigurationError("num_simulations must be positive")
        if self.num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        if self.num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")

    @property
    def lr_step_batches(self) -> int:
        per_batch = self.batch_size * self.num_ranks
        return max(1, self.lr_step_samples // per_batch)


@dataclass
class SurrogateArchitecture:
    """Architecture of the surrogate MLP (paper: two hidden layers of 256)."""

    hidden_sizes: Tuple[int, ...] = (256, 256)
    activation: str = "relu"

    def __post_init__(self) -> None:
        if not self.hidden_sizes:
            raise ConfigurationError("the surrogate needs at least one hidden layer")
