"""Study-level configuration objects."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.server.trainer import TrainerConfig
from repro.utils.exceptions import ConfigurationError


@dataclass
class OnlineStudyConfig:
    """Configuration of an online (streamed) training study.

    The defaults are a scaled-down version of the paper's Section 4.3-4.5
    setup: clients submitted in series, per-rank Reservoir buffers with a
    capacity of roughly a quarter of the unique samples, batch size 10,
    Adam(1e-3) with the learning rate halved on a fixed sample schedule.
    """

    # Ensemble.
    num_simulations: int = 50
    series_sizes: Optional[Sequence[int]] = None
    max_concurrent_clients: int = 8
    inter_series_delay: float = 0.0
    client_step_delay: float = 0.0
    sampler: str = "monte_carlo"

    # Server.
    num_ranks: int = 1
    buffer_kind: str = "reservoir"
    buffer_capacity: int = 250
    buffer_threshold: int = 50
    batch_size: int = 10
    validation_interval: int = 100
    max_batches: Optional[int] = None
    learning_rate: float = 1e-3
    lr_step_samples: int = 10_000
    lr_gamma: float = 0.5
    lr_min: float = 2.5e-4

    # Transport.  ``"inproc"`` hands messages between threads by reference;
    # ``"mp"`` runs each client as a forked OS process streaming packed
    # message batches over multiprocessing queues; ``"shm"`` also forks one
    # process per client but streams the packed batches through lock-free
    # shared-memory SPSC ring buffers (one per client and server rank),
    # keeping only rare control messages on the queues.
    # ``transport_batch_size`` is the client-side batching width (messages
    # per packed buffer).
    transport: str = "inproc"
    transport_batch_size: int = 1
    transport_queue_size: int = 100_000
    #: Ring geometry of the ``"shm"`` backend: each (client, rank) ring holds
    #: ``ring_slots`` packed batches of at most ``ring_slot_bytes`` bytes.
    #: Oversized batches are split automatically; a single message that
    #: cannot fit raises, naming this knob.
    ring_slots: int = 16
    ring_slot_bytes: int = 65_536
    #: With ``transport="mp"``, kill a client process that has not finished
    #: after this many seconds and restart it.  This caps a client's *total
    #: runtime*, not its liveness, so it is opt-in (``None`` waits forever);
    #: set it only when an upper bound on one simulation's duration is known.
    client_process_timeout: Optional[float] = None
    #: With process client mode (``"mp"``/``"shm"``), kill-and-restart a
    #: client whose last server-observed activity (hello/time step/heartbeat)
    #: is older than this many seconds — the paper's unresponsive-client
    #: protocol, driven by the launcher through the shared heartbeat
    #: monitor.  The restarted client resends and the server deduplicates;
    #: kills are counted in ``TransportStats.unresponsive_kills``.
    #: ``None`` disables the watchdog.
    client_heartbeat_timeout: Optional[float] = None

    # Misc.
    batch_compute_delay: float = 0.0
    seed: int = 0
    checkpoint_dir: Optional[Path] = None
    checkpoint_interval: int = 0
    track_occurrences: bool = True

    def __post_init__(self) -> None:
        if self.num_simulations <= 0:
            raise ConfigurationError("num_simulations must be positive")
        if self.num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        if self.buffer_capacity <= 0:
            raise ConfigurationError("buffer_capacity must be positive")
        if self.buffer_threshold < 0 or self.buffer_threshold > self.buffer_capacity:
            raise ConfigurationError("buffer_threshold must be in [0, capacity]")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.transport not in ("inproc", "mp", "shm"):
            raise ConfigurationError("transport must be 'inproc', 'mp' or 'shm'")
        if self.transport_batch_size <= 0:
            raise ConfigurationError("transport_batch_size must be positive")
        if self.ring_slots <= 0:
            raise ConfigurationError("ring_slots must be positive")
        if self.ring_slot_bytes <= 0:
            raise ConfigurationError("ring_slot_bytes must be positive")
        if self.client_process_timeout is not None and self.client_process_timeout <= 0:
            raise ConfigurationError("client_process_timeout must be positive or None")
        if self.client_heartbeat_timeout is not None and self.client_heartbeat_timeout <= 0:
            raise ConfigurationError("client_heartbeat_timeout must be positive or None")
        if self.max_concurrent_clients <= 0:
            raise ConfigurationError("max_concurrent_clients must be positive")

    @property
    def lr_step_batches(self) -> int:
        """Learning-rate decay period in batches per rank.

        The paper keeps the decay tied to the number of *samples* seen, so with
        more GPUs the per-rank batch period shrinks: 1 000/500/250 batches for
        1/2/4 GPUs at batch size 10 and a 10 000-sample period.
        """
        per_batch = self.batch_size * self.num_ranks
        return max(1, self.lr_step_samples // per_batch)

    def trainer_config(self) -> TrainerConfig:
        """Build the per-rank trainer configuration."""
        return TrainerConfig(
            batch_size=self.batch_size,
            validation_interval=self.validation_interval,
            max_batches=self.max_batches,
            track_occurrences=self.track_occurrences,
            batch_compute_delay=self.batch_compute_delay,
        )


@dataclass
class OfflineStudyConfig:
    """Configuration of the offline (file-based, multi-epoch) baseline."""

    num_simulations: int = 50
    num_epochs: int = 1
    num_ranks: int = 1
    batch_size: int = 10
    num_workers: int = 0
    learning_rate: float = 1e-3
    lr_step_samples: int = 10_000
    lr_gamma: float = 0.5
    lr_min: float = 2.5e-4
    validation_interval: int = 100
    max_batches: Optional[int] = None
    sampler: str = "monte_carlo"
    generation_workers: int = 4
    io_delay_per_sample: float = 0.0
    batch_compute_delay: float = 0.0
    seed: int = 0
    store_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.num_simulations <= 0:
            raise ConfigurationError("num_simulations must be positive")
        if self.num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        if self.num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")

    @property
    def lr_step_batches(self) -> int:
        per_batch = self.batch_size * self.num_ranks
        return max(1, self.lr_step_samples // per_batch)


@dataclass
class SurrogateArchitecture:
    """Architecture of the surrogate MLP (paper: two hidden layers of 256)."""

    hidden_sizes: Tuple[int, ...] = (256, 256)
    activation: str = "relu"

    def __post_init__(self) -> None:
        if not self.hidden_sizes:
            raise ConfigurationError("the surrogate needs at least one hidden layer")
