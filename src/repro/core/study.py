"""Study drivers: run a full online or offline training campaign.

``OnlineStudy`` reproduces the paper's workflow end to end: the launcher runs
the ensemble of solver clients (in series, with bounded concurrency), each
client streams its time steps to the training server, and the server's
aggregator/training threads train the surrogate concurrently with data
generation.  ``OfflineStudy`` is the baseline: generate (or reuse) a file
dataset, then train epoch by epoch from disk.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.client.simulation_client import SimulationClient
from repro.core.config import OfflineStudyConfig, OnlineStudyConfig
from repro.core.heat_usecase import HeatSurrogateCase
from repro.core.results import OfflineStudyResult, OnlineStudyResult
from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig
from repro.offline.dataset import SimulationDataset
from repro.offline.storage import SimulationStore
from repro.offline.trainer import OfflineTrainer, OfflineTrainingConfig
from repro.parallel.transport import Transport, make_transport
from repro.server.server import ServerConfig, TrainingServer
from repro.server.sharding import HashRing, ShardManager
from repro.server.validation import ValidationSet

Array = np.ndarray


class OnlineStudy:
    """Online (streaming) surrogate-training study for a use case."""

    def __init__(
        self,
        case: HeatSurrogateCase,
        config: OnlineStudyConfig,
        validation: Optional[ValidationSet] = None,
    ) -> None:
        self.case = case
        self.config = config
        self.validation = validation

    # ------------------------------------------------------------------ build
    def _build_specs(self) -> list[ClientSpec]:
        parameters = self.case.sample_parameters(self.config.num_simulations)
        return [
            ClientSpec(
                client_id=index,
                parameters=np.asarray(row),
                solver_params=self.case.parameters_to_solver(row),
            )
            for index, row in enumerate(parameters)
        ]

    def _server_config(self) -> ServerConfig:
        cfg = self.config
        return ServerConfig(
            num_ranks=cfg.num_ranks,
            buffer_kind=cfg.buffer_kind,
            buffer_capacity=cfg.buffer_capacity,
            buffer_threshold=cfg.buffer_threshold,
            expected_clients=cfg.num_simulations,
            trainer=cfg.trainer_config(),
            learning_rate=cfg.learning_rate,
            lr_step_batches=cfg.lr_step_batches,
            lr_gamma=cfg.lr_gamma,
            lr_min=cfg.lr_min,
            seed=cfg.seed,
            checkpoint_dir=cfg.checkpoint_dir,
            checkpoint_interval=cfg.checkpoint_interval,
        )

    def _build_server(self, router: Transport) -> TrainingServer:
        return TrainingServer(
            config=self._server_config(),
            model_factory=self.case.model_factory,
            router=router,
            validation=self.validation,
        )

    def _build_shard_manager(self, specs: Sequence[ClientSpec]) -> ShardManager:
        cfg = self.config
        return ShardManager(
            server_config=self._server_config(),
            transport_config=cfg.transport_config,
            model_factory=self.case.model_factory,
            client_ids=[spec.client_id for spec in specs],
            validation=self.validation,
            max_concurrent_clients=cfg.max_concurrent_clients,
        )

    def _build_launcher(self, router: Transport, specs: Sequence[ClientSpec],
                        heartbeat_monitor: object,
                        shard_ring: Optional[HashRing] = None) -> Launcher:
        cfg = self.config
        solver_steps = self.case.solver_config.num_steps

        def client_factory(spec: ClientSpec) -> SimulationClient:
            return SimulationClient(
                client_id=spec.client_id,
                parameters=tuple(float(p) for p in np.asarray(spec.parameters).ravel()),
                solver=self.case.solver_factory(),
                router=router,
                num_time_steps=solver_steps,
                step_delay=cfg.client_step_delay,
                send_batch_size=cfg.transport_batch_size,
            )

        launcher_config = LauncherConfig(
            series_sizes=cfg.series_sizes,
            max_concurrent_clients=cfg.max_concurrent_clients,
            inter_series_delay=cfg.inter_series_delay,
            client_mode=cfg.transport_config.client_mode,
            process_join_timeout=cfg.client_process_timeout,
            heartbeat_timeout=cfg.client_heartbeat_timeout,
        )
        # The server's aggregators feed the heartbeat monitor; handing it to
        # the launcher closes the paper's loop: the server watches for
        # unresponsive clients, the launcher kills and restarts them.  In a
        # sharded study the monitor and the transport both route by the hash
        # ring, so the same protocol spans every shard.
        return Launcher(client_factory, specs, launcher_config,
                        heartbeat_monitor=heartbeat_monitor,
                        transport=router,
                        shard_ring=shard_ring)

    # -------------------------------------------------------------------- run
    def run(self) -> OnlineStudyResult:
        """Run the full online study (blocking) and return its result."""
        cfg = self.config
        # ``transport_config`` is the already-normalised TransportConfig (the
        # flat legacy knobs were folded in at construction).  Only the
        # launcher concurrency bound travels separately: the shm ring grid is
        # a slot table sized by it, not by the ensemble size — clients lease
        # a ring at connect and release it once their finished marker lands.
        num_shards = cfg.transport_config.shard.num_shards
        specs = self._build_specs()
        shard_ring = None
        if num_shards > 1:
            # Sharded tier: one transport endpoint + server per shard, the
            # hash ring routing each client at connect; the manager merges
            # the per-shard results back into one ServerResult.
            manager = self._build_shard_manager(specs)
            router: Transport = manager.router
            runner = manager
            heartbeat_monitor = manager.heartbeat_monitor
            shard_ring = manager.ring
        else:
            router = make_transport(
                cfg.transport_config,
                cfg.num_ranks,
                max_concurrent_clients=cfg.max_concurrent_clients,
            )
            server = self._build_server(router)
            runner = server
            heartbeat_monitor = server.heartbeat_monitor
        launcher = self._build_launcher(router, specs, heartbeat_monitor,
                                        shard_ring=shard_ring)

        start = time.monotonic()
        try:
            launcher.start()
            server_result = runner.run()
            launcher_report = launcher.join()
            elapsed = time.monotonic() - start
        finally:
            router.shutdown()

        unique_samples = cfg.num_simulations * self.case.solver_config.num_steps
        dataset_bytes = unique_samples * self.case.field_size * 4
        return OnlineStudyResult(
            server=server_result,
            launcher=launcher_report,
            total_elapsed=elapsed,
            unique_samples=unique_samples,
            dataset_bytes=dataset_bytes,
            config_summary={
                "buffer_kind": cfg.buffer_kind,
                "num_ranks": cfg.num_ranks,
                "num_shards": num_shards,
                "num_simulations": cfg.num_simulations,
                "batch_size": cfg.batch_size,
                "transport": cfg.transport,
                **self.case.describe(),
            },
        )


class OfflineStudy:
    """Offline baseline: generate a dataset on disk, then train for several epochs."""

    def __init__(
        self,
        case: HeatSurrogateCase,
        config: OfflineStudyConfig,
        validation: Optional[ValidationSet] = None,
        store: Optional[SimulationStore] = None,
    ) -> None:
        self.case = case
        self.config = config
        self.validation = validation
        self._store = store

    def generate(self) -> tuple[SimulationStore, float]:
        """Generate (or reuse) the on-disk dataset; returns (store, seconds)."""
        if self._store is not None:
            return self._store, 0.0
        directory = self.config.store_dir or Path(tempfile.mkdtemp(prefix="repro-offline-"))
        start = time.monotonic()
        store = self.case.generate_store(
            directory,
            self.config.num_simulations,
            workers=self.config.generation_workers,
        )
        elapsed = time.monotonic() - start
        self._store = store
        return store, elapsed

    def run(self) -> OfflineStudyResult:
        """Generate the dataset if needed, train, and return the result."""
        cfg = self.config
        store, generation_elapsed = self.generate()
        dataset = SimulationDataset(store)
        trainer = OfflineTrainer(
            dataset=dataset,
            config=OfflineTrainingConfig(
                num_epochs=cfg.num_epochs,
                batch_size=cfg.batch_size,
                num_ranks=cfg.num_ranks,
                num_workers=cfg.num_workers,
                learning_rate=cfg.learning_rate,
                lr_step_batches=cfg.lr_step_batches,
                lr_gamma=cfg.lr_gamma,
                lr_min=cfg.lr_min,
                validation_interval=cfg.validation_interval,
                max_batches=cfg.max_batches,
                seed=cfg.seed,
                io_delay_per_sample=cfg.io_delay_per_sample,
                batch_compute_delay=cfg.batch_compute_delay,
            ),
            model_factory=self.case.model_factory,
            validation=self.validation,
        )
        start = time.monotonic()
        training_result = trainer.run()
        training_elapsed = time.monotonic() - start
        return OfflineStudyResult(
            training=training_result,
            generation_elapsed=generation_elapsed,
            training_elapsed=training_elapsed,
            unique_samples=len(dataset),
            dataset_bytes=store.total_bytes,
            store_dir=str(store.directory),
            config_summary={
                "num_epochs": cfg.num_epochs,
                "num_ranks": cfg.num_ranks,
                "num_simulations": cfg.num_simulations,
                "batch_size": cfg.batch_size,
                **self.case.describe(),
            },
        )
