"""The paper's heat-equation use case, wired end to end.

:class:`HeatSurrogateCase` bundles everything the studies need for the paper's
experiments: the solver configuration, the parameter space and sampler, the
surrogate architecture, validation-set generation and offline dataset
generation.  Other use cases only need to provide the same small interface
(solver factory, model factory, parameter sampler) to reuse the study drivers.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.config import SurrogateArchitecture
from repro.nn.containers import Sequential
from repro.nn.mlp import MLPConfig, build_mlp
from repro.offline.storage import SimulationStore
from repro.sampling import get_sampler
from repro.sampling.base import HEAT_PARAMETER_SPACE, ParameterSpace
from repro.server.validation import ValidationSet
from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters

Array = np.ndarray


@dataclass
class HeatSurrogateSpec:
    """Scaled experiment description (grid size, steps, architecture)."""

    solver: HeatEquationConfig = field(default_factory=lambda: HeatEquationConfig(nx=16, ny=16, num_steps=20))
    architecture: SurrogateArchitecture = field(default_factory=lambda: SurrogateArchitecture(hidden_sizes=(64, 64)))
    parameter_space: ParameterSpace = field(default_factory=lambda: HEAT_PARAMETER_SPACE)
    sampler: str = "monte_carlo"
    seed: int = 0

    @staticmethod
    def paper_scale() -> "HeatSurrogateSpec":
        """The configuration actually used in the paper (too large for tests)."""
        return HeatSurrogateSpec(
            solver=HeatEquationConfig(nx=1000, ny=1000, num_steps=100),
            architecture=SurrogateArchitecture(hidden_sizes=(256, 256)),
        )


class HeatSurrogateCase:
    """Factories and data generation for the heat-equation surrogate study."""

    def __init__(self, spec: HeatSurrogateSpec | None = None) -> None:
        self.spec = spec or HeatSurrogateSpec()
        self._sampler = get_sampler(self.spec.sampler, self.spec.parameter_space, seed=self.spec.seed)

    # ------------------------------------------------------------- factories
    @property
    def solver_config(self) -> HeatEquationConfig:
        return self.spec.solver

    @property
    def field_size(self) -> int:
        """Output dimension of the surrogate (flattened grid size)."""
        return self.spec.solver.num_points

    @property
    def input_size(self) -> int:
        """Input dimension: 5 temperatures + time."""
        return self.spec.parameter_space.dimension + 1

    def solver_factory(self) -> HeatEquationSolver:
        """A fresh sequential solver instance (one per client)."""
        return HeatEquationSolver(self.spec.solver)

    def model_factory(self) -> Sequential:
        """A fresh surrogate replica (same seed => identical weights)."""
        config = MLPConfig(
            in_features=self.input_size,
            hidden_sizes=tuple(self.spec.architecture.hidden_sizes),
            out_features=self.field_size,
            activation=self.spec.architecture.activation,
            seed=self.spec.seed,
            dtype=np.float32,
        )
        return build_mlp(config)

    # -------------------------------------------------------------- sampling
    def sample_parameters(self, count: int) -> Array:
        """Draw ``count`` parameter vectors X from the experimental design."""
        return self._sampler.sample(count)

    def parameters_to_solver(self, parameters: Array) -> HeatParameters:
        """Convert a raw parameter vector into the solver's typed parameters."""
        return HeatParameters.from_array(np.asarray(parameters))

    # --------------------------------------------------------------- datasets
    def run_simulation(self, parameters: Array) -> Tuple[Array, Array]:
        """Run one simulation; returns (times, stacked flattened fields)."""
        solver = self.solver_factory()
        series = solver.run(self.parameters_to_solver(parameters))
        fields = series.stack().reshape(len(series), -1).astype(np.float32)
        return series.times, fields

    def generate_validation_set(self, num_simulations: int = 10, seed_offset: int = 10_000) -> ValidationSet:
        """Generate held-out simulations never seen during training.

        The validation design uses a sampler stream shifted by ``seed_offset``
        so its parameters cannot collide with the training ensemble's.
        """
        sampler = get_sampler(
            self.spec.sampler, self.spec.parameter_space, seed=self.spec.seed + seed_offset
        )
        parameter_vectors = sampler.sample(num_simulations)
        times: List[Array] = []
        fields: List[Array] = []
        for row in parameter_vectors:
            sim_times, sim_fields = self.run_simulation(row)
            times.append(sim_times)
            fields.append(sim_fields)
        return ValidationSet.from_simulations(list(parameter_vectors), times, fields)

    def generate_store(
        self,
        directory: str | Path,
        num_simulations: int,
        parameter_vectors: Sequence[Array] | None = None,
        workers: int = 4,
    ) -> SimulationStore:
        """Generate an offline dataset on disk (the paper's offline baseline data).

        The generation is parallelised over a thread pool, standing in for the
        paper's observation that the framework's client parallelism is also
        useful to produce offline datasets quickly.
        """
        store = SimulationStore(directory)
        if parameter_vectors is None:
            parameter_vectors = self.sample_parameters(num_simulations)
        parameter_vectors = [np.asarray(row) for row in parameter_vectors][:num_simulations]

        def produce(item: Tuple[int, Array]) -> Tuple[int, Array, Array, Array]:
            index, row = item
            times, fields = self.run_simulation(row)
            return index, row, times, fields

        if workers <= 1:
            produced = [produce(item) for item in enumerate(parameter_vectors)]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                produced = list(pool.map(produce, enumerate(parameter_vectors)))
        # Store in deterministic order regardless of thread completion order.
        for index, row, times, fields in sorted(produced, key=lambda item: item[0]):
            store.add_simulation(index, row.tolist(), times.tolist(), fields)
        return store

    # ------------------------------------------------------------ description
    def describe(self) -> dict:
        """Human-readable summary used by the experiment reports."""
        solver = self.spec.solver
        return {
            "grid": f"{solver.ny}x{solver.nx}",
            "num_steps": solver.num_steps,
            "field_size": self.field_size,
            "hidden_sizes": tuple(self.spec.architecture.hidden_sizes),
            "parameter_space": [self.spec.parameter_space.lower, self.spec.parameter_space.upper],
            "sampler": self.spec.sampler,
            "seed": self.spec.seed,
        }
