"""High-level API: configure and run online / offline surrogate-training studies.

Exports resolve lazily (PEP 562): the study driver imports the training
server, whose modules import back into this package for metrics and
configs — eager re-exports here would turn that into an import cycle as
soon as a server module is the entry point (e.g. the tcp transport
importing ``repro.server.serving``).
"""

from importlib import import_module

_EXPORTS = {
    "OnlineStudyConfig": "repro.core.config",
    "OfflineStudyConfig": "repro.core.config",
    "OnlineStudy": "repro.core.study",
    "OfflineStudy": "repro.core.study",
    "OnlineStudyResult": "repro.core.results",
    "OfflineStudyResult": "repro.core.results",
    "HeatSurrogateCase": "repro.core.heat_usecase",
    "HeatSurrogateSpec": "repro.core.heat_usecase",
    "ThroughputMeter": "repro.core.metrics",
    "LossHistory": "repro.core.metrics",
    "BufferPopulationSeries": "repro.core.metrics",
    "TrainingMetrics": "repro.core.metrics",
    "merge_worker_metrics": "repro.core.metrics",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each export once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
