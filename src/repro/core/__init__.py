"""High-level API: configure and run online / offline surrogate-training studies."""

from repro.core.config import OfflineStudyConfig, OnlineStudyConfig
from repro.core.heat_usecase import HeatSurrogateCase, HeatSurrogateSpec
from repro.core.metrics import (
    BufferPopulationSeries,
    LossHistory,
    ThroughputMeter,
    TrainingMetrics,
    merge_worker_metrics,
)
from repro.core.results import OfflineStudyResult, OnlineStudyResult
from repro.core.study import OfflineStudy, OnlineStudy

__all__ = [
    "OnlineStudyConfig",
    "OfflineStudyConfig",
    "OnlineStudy",
    "OfflineStudy",
    "OnlineStudyResult",
    "OfflineStudyResult",
    "HeatSurrogateCase",
    "HeatSurrogateSpec",
    "ThroughputMeter",
    "LossHistory",
    "BufferPopulationSeries",
    "TrainingMetrics",
    "merge_worker_metrics",
]
