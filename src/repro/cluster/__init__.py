"""Simulated cluster resources and batch scheduler.

The paper runs on Jean-Zay with Slurm: a CPU partition for the solver clients
and a GPU partition for the training server, plus a "schedule-in-schedule"
mode where a large allocation is requested once and client jobs are packed
into it.  This package models those mechanisms with a virtual clock so that
scheduling phenomena (client series, server idleness while waiting for
resources, elasticity) can be reproduced deterministically on one node.
"""

from repro.cluster.resources import ClusterSpec, NodeSpec, Partition
from repro.cluster.job import Job, JobState
from repro.cluster.scheduler import AllocationPolicy, BatchScheduler
from repro.cluster.groups import JobGroup, SeriesSubmitter

__all__ = [
    "NodeSpec",
    "Partition",
    "ClusterSpec",
    "Job",
    "JobState",
    "BatchScheduler",
    "AllocationPolicy",
    "JobGroup",
    "SeriesSubmitter",
]
