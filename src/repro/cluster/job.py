"""Batch jobs handled by the simulated scheduler."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class JobState(enum.Enum):
    """Lifecycle of a batch job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


_job_counter = itertools.count(1)


@dataclass
class Job:
    """A resource request plus an estimated runtime.

    Attributes
    ----------
    name:
        Human readable job name (e.g. ``client-0042`` or ``server``).
    partition:
        Partition (queue) the job is submitted to.
    cores, gpus:
        Resources requested.
    runtime:
        Estimated runtime in (virtual) seconds once started.
    payload:
        Arbitrary object carried by the job (e.g. the simulation parameters);
        the scheduler does not interpret it.
    on_complete:
        Optional callback invoked by the scheduler when the job finishes.
    """

    name: str
    partition: str
    cores: int = 1
    gpus: int = 0
    runtime: float = 0.0
    payload: object = None
    on_complete: Optional[Callable[["Job"], None]] = None

    job_id: int = field(default_factory=lambda: next(_job_counter))
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("a job must request at least one core")
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")
        if self.runtime < 0:
            raise ValueError("runtime must be non-negative")

    @property
    def wait_time(self) -> Optional[float]:
        """Queueing delay (start - submit), None while pending."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def finished(self) -> bool:
        return self.state.terminal

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Job(id={self.job_id}, name={self.name!r}, partition={self.partition!r}, "
            f"cores={self.cores}, gpus={self.gpus}, state={self.state.value})"
        )
