"""Description of the simulated cluster: nodes, partitions, whole machine.

Defaults mirror the paper's Jean-Zay configuration: CPU nodes with 2×20 Cascade
Lake cores, GPU nodes with 4 V100s and 40 cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one node type."""

    name: str
    cores: int
    gpus: int = 0
    memory_gb: float = 192.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("a node needs at least one core")
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")


@dataclass
class Partition:
    """A scheduling partition (queue) made of ``num_nodes`` identical nodes."""

    name: str
    node: NodeSpec
    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("a partition needs at least one node")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.gpus


@dataclass
class ClusterSpec:
    """Whole machine: a set of partitions addressed by name."""

    partitions: Dict[str, Partition] = field(default_factory=dict)

    def add_partition(self, partition: Partition) -> "ClusterSpec":
        if partition.name in self.partitions:
            raise ValueError(f"partition {partition.name!r} already defined")
        self.partitions[partition.name] = partition
        return self

    def partition(self, name: str) -> Partition:
        try:
            return self.partitions[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown partition {name!r}; available: {sorted(self.partitions)}"
            ) from exc

    def names(self) -> List[str]:
        return list(self.partitions)

    @property
    def total_cores(self) -> int:
        return sum(p.total_cores for p in self.partitions.values())

    @property
    def total_gpus(self) -> int:
        return sum(p.total_gpus for p in self.partitions.values())


def jean_zay_like(cpu_nodes: int = 128, gpu_nodes: int = 1) -> ClusterSpec:
    """Build a scaled Jean-Zay-like cluster (CPU partition + 4-GPU nodes)."""
    cpu_node = NodeSpec(name="cascade-lake", cores=40, gpus=0, memory_gb=192.0)
    gpu_node = NodeSpec(name="v100-quad", cores=40, gpus=4, memory_gb=160.0)
    spec = ClusterSpec()
    spec.add_partition(Partition(name="cpu", node=cpu_node, num_nodes=cpu_nodes))
    spec.add_partition(Partition(name="gpu", node=gpu_node, num_nodes=gpu_nodes))
    return spec
