"""Slurm-like batch scheduler over the virtual clock.

The scheduler is event-driven: jobs are submitted with a resource request and
an estimated runtime; :meth:`BatchScheduler.advance` moves the virtual clock
forward, starting pending jobs FIFO (with optional backfilling) whenever the
requested resources are free and completing running jobs whose runtime has
elapsed.  This is the substrate used by the launcher to reproduce the paper's
client-series submission pattern and the resulting data-production stalls
(Figure 2), and by the discrete-event performance model for Table 2.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.job import Job, JobState
from repro.cluster.resources import ClusterSpec
from repro.utils.exceptions import SchedulerError
from repro.utils.timing import VirtualClock


class AllocationPolicy(enum.Enum):
    """Order in which pending jobs are considered for placement."""

    FIFO = "fifo"
    BACKFILL = "backfill"


@dataclass
class _PartitionUsage:
    """Currently allocated cores/GPUs of one partition."""

    cores_used: int = 0
    gpus_used: int = 0


@dataclass
class SchedulerStats:
    """Aggregate statistics maintained by the scheduler."""

    submitted: int = 0
    started: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    total_wait_time: float = 0.0
    core_seconds: float = 0.0
    gpu_seconds: float = 0.0

    @property
    def mean_wait_time(self) -> float:
        return self.total_wait_time / self.started if self.started else 0.0


class BatchScheduler:
    """FIFO/backfill scheduler with per-partition core and GPU accounting."""

    def __init__(
        self,
        cluster: ClusterSpec,
        clock: Optional[VirtualClock] = None,
        policy: AllocationPolicy = AllocationPolicy.FIFO,
    ) -> None:
        self.cluster = cluster
        self.clock = clock or VirtualClock()
        self.policy = policy
        self._pending: List[Job] = []
        self._running: List[Job] = []
        self._completed: List[Job] = []
        self._usage: Dict[str, _PartitionUsage] = {
            name: _PartitionUsage() for name in cluster.partitions
        }
        self._jobs: Dict[int, Job] = {}
        # Min-heap of (end_time, job_id) for running jobs.
        self._end_events: List[tuple[float, int]] = []
        self.stats = SchedulerStats()

    # ----------------------------------------------------------------- submit
    def submit(self, job: Job) -> Job:
        """Submit a job; it stays pending until resources are available."""
        if job.partition not in self.cluster.partitions:
            raise SchedulerError(f"unknown partition {job.partition!r}")
        partition = self.cluster.partition(job.partition)
        if job.cores > partition.total_cores or job.gpus > partition.total_gpus:
            raise SchedulerError(
                f"job {job.name!r} requests more resources than partition "
                f"{job.partition!r} provides"
            )
        job.submit_time = self.clock.now()
        job.state = JobState.PENDING
        self._pending.append(job)
        self._jobs[job.job_id] = job
        self.stats.submitted += 1
        self._try_start_jobs()
        return job

    def cancel(self, job_id: int) -> Job:
        """Cancel a pending or running job."""
        job = self._get(job_id)
        if job.state == JobState.PENDING:
            self._pending.remove(job)
        elif job.state == JobState.RUNNING:
            self._release(job)
            self._running.remove(job)
        elif job.finished:
            return job
        job.state = JobState.CANCELLED
        job.end_time = self.clock.now()
        self._completed.append(job)
        self.stats.cancelled += 1
        self._try_start_jobs()
        return job

    def fail(self, job_id: int) -> Job:
        """Mark a running job as failed immediately (fault injection)."""
        job = self._get(job_id)
        if job.state != JobState.RUNNING:
            raise SchedulerError(f"job {job_id} is not running (state={job.state.value})")
        self._release(job)
        self._running.remove(job)
        job.state = JobState.FAILED
        job.end_time = self.clock.now()
        self._completed.append(job)
        self.stats.failed += 1
        self._try_start_jobs()
        return job

    # ------------------------------------------------------------------ query
    def _get(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError as exc:
            raise SchedulerError(f"unknown job id {job_id}") from exc

    def job(self, job_id: int) -> Job:
        """Return the job with this id."""
        return self._get(job_id)

    def pending_jobs(self) -> List[Job]:
        return list(self._pending)

    def running_jobs(self) -> List[Job]:
        return list(self._running)

    def completed_jobs(self) -> List[Job]:
        return list(self._completed)

    def utilization(self, partition: str) -> float:
        """Fraction of the partition's cores currently allocated."""
        usage = self._usage[partition]
        total = self.cluster.partition(partition).total_cores
        return usage.cores_used / total if total else 0.0

    # ------------------------------------------------------------------ clock
    def advance(self, seconds: float) -> List[Job]:
        """Advance the virtual clock, completing and starting jobs on the way.

        Returns the jobs that completed during the interval, in completion order.
        """
        if seconds < 0:
            raise SchedulerError("cannot advance the scheduler backwards")
        target = self.clock.now() + seconds
        newly_completed: List[Job] = []
        while self._end_events and self._end_events[0][0] <= target:
            end_time, job_id = heapq.heappop(self._end_events)
            job = self._jobs[job_id]
            if job.state != JobState.RUNNING:
                continue  # already cancelled/failed
            self.clock.advance_to(end_time)
            self._complete(job)
            newly_completed.append(job)
            self._try_start_jobs()
        self.clock.advance_to(target)
        self._try_start_jobs()
        return newly_completed

    def run_until_idle(self, max_time: float = 1e12) -> float:
        """Advance until no job is pending or running; returns the final time."""
        guard = 0
        while (self._pending or self._running) and self.clock.now() < max_time:
            if self._end_events:
                next_end = self._end_events[0][0]
                self.advance(max(next_end - self.clock.now(), 0.0))
            else:
                # Pending jobs but nothing running and nothing can start: stuck.
                started = self._try_start_jobs()
                if not started:
                    raise SchedulerError(
                        "scheduler is stuck: pending jobs cannot be placed and no job is running"
                    )
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - safety net
                raise SchedulerError("run_until_idle exceeded iteration guard")
        return self.clock.now()

    # -------------------------------------------------------------- internals
    def _fits(self, job: Job) -> bool:
        usage = self._usage[job.partition]
        partition = self.cluster.partition(job.partition)
        return (
            usage.cores_used + job.cores <= partition.total_cores
            and usage.gpus_used + job.gpus <= partition.total_gpus
        )

    def _try_start_jobs(self) -> int:
        started = 0
        if self.policy == AllocationPolicy.FIFO:
            # Strict FIFO per partition: stop at the first job that does not fit.
            blocked_partitions: set[str] = set()
            still_pending: List[Job] = []
            for job in self._pending:
                if job.partition in blocked_partitions:
                    still_pending.append(job)
                    continue
                if self._fits(job):
                    self._start(job)
                    started += 1
                else:
                    blocked_partitions.add(job.partition)
                    still_pending.append(job)
            self._pending = still_pending
        else:  # BACKFILL: any pending job that fits may start.
            still_pending = []
            for job in self._pending:
                if self._fits(job):
                    self._start(job)
                    started += 1
                else:
                    still_pending.append(job)
            self._pending = still_pending
        return started

    def _start(self, job: Job) -> None:
        usage = self._usage[job.partition]
        usage.cores_used += job.cores
        usage.gpus_used += job.gpus
        job.state = JobState.RUNNING
        job.start_time = self.clock.now()
        self._running.append(job)
        heapq.heappush(self._end_events, (job.start_time + job.runtime, job.job_id))
        self.stats.started += 1
        self.stats.total_wait_time += job.wait_time or 0.0

    def _release(self, job: Job) -> None:
        usage = self._usage[job.partition]
        usage.cores_used -= job.cores
        usage.gpus_used -= job.gpus

    def _complete(self, job: Job) -> None:
        self._release(job)
        self._running.remove(job)
        job.state = JobState.COMPLETED
        job.end_time = self.clock.now()
        self._completed.append(job)
        self.stats.completed += 1
        elapsed = (job.end_time or 0.0) - (job.start_time or 0.0)
        self.stats.core_seconds += job.cores * elapsed
        self.stats.gpu_seconds += job.gpus * elapsed
        if job.on_complete is not None:
            job.on_complete(job)
