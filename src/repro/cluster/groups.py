"""Job groups and client-series submission (schedule-in-schedule).

The paper submits clients in successive series (100, 100, then 50 concurrent
simulations) because of the machine's limited support for heterogeneous jobs;
the transitions between series cause visible drops in the FIFO/FIRO training
throughput (Figure 2).  :class:`SeriesSubmitter` reproduces that pattern:
series ``i+1`` is only submitted once every job of series ``i`` completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cluster.job import Job, JobState
from repro.cluster.scheduler import BatchScheduler


@dataclass
class JobGroup:
    """A named set of jobs submitted together inside a wider allocation."""

    name: str
    jobs: List[Job] = field(default_factory=list)

    def add(self, job: Job) -> Job:
        self.jobs.append(job)
        return job

    @property
    def all_finished(self) -> bool:
        return all(job.finished for job in self.jobs)

    @property
    def all_completed(self) -> bool:
        return all(job.state == JobState.COMPLETED for job in self.jobs)

    @property
    def num_running(self) -> int:
        return sum(1 for job in self.jobs if job.state == JobState.RUNNING)

    @property
    def num_pending(self) -> int:
        return sum(1 for job in self.jobs if job.state == JobState.PENDING)


class SeriesSubmitter:
    """Submit groups of client jobs one series at a time.

    Parameters
    ----------
    scheduler:
        The batch scheduler to submit to.
    series:
        Sequence of job lists; each inner list is one series.
    inter_series_delay:
        Extra (virtual) seconds between the completion of one series and the
        submission of the next, modelling the scheduling overhead the paper
        observes as throughput drops.
    on_series_start:
        Callback called with the series index when a series is submitted.
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        series: Sequence[Sequence[Job]],
        inter_series_delay: float = 0.0,
        on_series_start: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.series = [list(group) for group in series]
        self.inter_series_delay = float(inter_series_delay)
        self.on_series_start = on_series_start
        self.groups: List[JobGroup] = []
        self._next_series = 0
        self._delay_pending = False
        self._delay_remaining = 0.0

    @property
    def num_series(self) -> int:
        return len(self.series)

    @property
    def current_series(self) -> int:
        """Index of the last submitted series (-1 before the first submission)."""
        return self._next_series - 1

    @property
    def finished(self) -> bool:
        return self._next_series >= len(self.series) and all(
            group.all_finished for group in self.groups
        )

    def start(self) -> None:
        """Submit the first series."""
        if self._next_series == 0:
            self._submit_next()

    def _submit_next(self) -> None:
        index = self._next_series
        group = JobGroup(name=f"series-{index}")
        for job in self.series[index]:
            group.add(self.scheduler.submit(job))
        self.groups.append(group)
        self._next_series += 1
        if self.on_series_start is not None:
            self.on_series_start(index)

    def step(self, seconds: float) -> List[Job]:
        """Advance the scheduler and submit the next series when due.

        Returns the jobs that completed during this step.
        """
        completed = self.scheduler.advance(seconds)
        if self._next_series < len(self.series) and self.groups and self.groups[-1].all_finished:
            if not self._delay_pending:
                # The previous series just finished: start the inter-series gap.
                self._delay_pending = True
                self._delay_remaining = self.inter_series_delay
            else:
                self._delay_remaining -= seconds
            if self._delay_remaining <= 0.0:
                self._delay_pending = False
                self._submit_next()
        return completed
