"""Sharded serving tier: N independent server shards behind one study.

One aggregator/trainer pair per rank is the throughput ceiling after the
transport work: a single server drains one endpoint no faster than one host
can.  This module scales the serving tier *out* instead of up —
:class:`ShardManager` runs ``num_shards`` independent
:class:`~repro.server.server.TrainingServer` instances, each with its own
transport endpoint, aggregator threads, buffer and training workers, and a
:class:`HashRing` routes every client to exactly one shard at ``connect()``:

* **Routing is consistent and deterministic.**  The ring hashes each shard
  into ``hash_replicas`` virtual points; a client id hashes to the first
  point clockwise.  A killed client that the launcher restarts hashes to the
  *same* shard, so the per-shard message log deduplicates its resend and the
  shm slot-lease table re-leases its ring unchanged — the PR 5 elastic
  join/leave protocol works per shard without modification.
* **Placement stays bounded on join/leave.**  Adding or removing a shard
  only remaps the clients whose arc the change touches (about ``1/N`` of
  them); every other client keeps its shard, its dedup log and its lease.
* **The study still reports one coherent result.**  :func:`aggregate_transport_stats`
  folds per-shard :class:`~repro.parallel.transport.TransportStats` into
  cluster totals keyed by global rank, and
  :func:`~repro.core.metrics.merge_worker_metrics` grows a shard dimension,
  so :class:`~repro.server.server.ServerResult` keeps its shape.

For simulated-cluster experiments, :func:`place_shards` submits one job per
shard to the :class:`~repro.cluster.scheduler.BatchScheduler`, and
:func:`estimate_sharded_throughput` evaluates the saturation model of the
tier (each shard serves ``min(offered load, per-shard rate)``) over the real
ring assignment — the model behind the scaling trajectory in
``benchmarks/test_bench_sharding.py``.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.resources import ClusterSpec
from repro.cluster.scheduler import BatchScheduler
from repro.core.metrics import merge_worker_metrics
from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler
from repro.parallel.transport import (
    Connection,
    Message,
    Transport,
    TransportConfig,
    TransportStats,
    make_transport,
)
from repro.server.server import ServerConfig, ServerResult, TrainingServer
from repro.server.validation import ValidationSet
from repro.utils.constants import DEFAULT_HASH_RING_REPLICAS
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

logger = get_logger("server.sharding")


# ------------------------------------------------------------------ hash ring
def _hash64(key: str) -> int:
    """64-bit stable hash of ``key`` (blake2b; never Python's salted hash)."""
    return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring mapping client ids onto shard ids.

    Each shard contributes ``replicas`` virtual points; a client id is owned
    by the first point at or clockwise after its own hash.  Placement is a
    pure function of ``(shard ids, replicas, client id)``: every process of
    a study — launcher, forked clients, server shards — computes the same
    assignment without coordination, and a restarted client always returns
    to the shard that holds its dedup log and slot lease.
    """

    def __init__(self, shards: Union[int, Iterable[int]],
                 replicas: int = DEFAULT_HASH_RING_REPLICAS) -> None:
        if isinstance(shards, int):
            shard_ids: Tuple[int, ...] = tuple(range(shards))
        else:
            shard_ids = tuple(int(shard) for shard in shards)
            if len(set(shard_ids)) != len(shard_ids):
                raise ConfigurationError("duplicate shard ids on the hash ring")
            shard_ids = tuple(sorted(shard_ids))
        if not shard_ids:
            raise ConfigurationError("a hash ring needs at least one shard")
        if replicas <= 0:
            raise ConfigurationError("hash ring replicas must be positive")
        self.shards = shard_ids
        self.replicas = int(replicas)
        points = [
            (_hash64(f"shard-{shard}/{replica}"), shard)
            for shard in shard_ids
            for replica in range(self.replicas)
        ]
        points.sort()
        self._points = points
        self._keys = [point[0] for point in points]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, client_id: int) -> int:
        """The shard owning ``client_id`` (deterministic across processes)."""
        key = _hash64(f"client-{int(client_id)}")
        index = bisect.bisect_right(self._keys, key)
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def partition(self, client_ids: Iterable[int]) -> Dict[int, List[int]]:
        """Client ids grouped by owning shard; every shard key is present."""
        assignment: Dict[int, List[int]] = {shard: [] for shard in self.shards}
        for client_id in client_ids:
            assignment[self.shard_for(client_id)].append(int(client_id))
        return assignment

    def with_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` joined (the bounded-remap property)."""
        return HashRing((*self.shards, int(shard)), replicas=self.replicas)

    def without_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` departed."""
        if int(shard) not in self.shards:
            raise ConfigurationError(f"shard {shard} is not on the ring")
        return HashRing(
            (s for s in self.shards if s != int(shard)), replicas=self.replicas
        )


# ----------------------------------------------------------- sharded transport
class ShardedTransport(Transport):
    """Client-routing front over the per-shard transports.

    Clients use this object exactly like a single transport: ``connect``
    resolves the owning shard on the hash ring and returns a
    :class:`~repro.parallel.transport.Connection` bound to that shard's own
    transport, so every subsequent push lands on the shard's channels
    without further routing.  Server-side draining happens *inside* each
    shard (its aggregators hold the shard transport directly); the poll
    methods here sweep the shards for tooling and tests.
    """

    def __init__(self, shards: Sequence[Transport], ring: HashRing) -> None:
        if not shards:
            raise ConfigurationError("a sharded transport needs at least one shard")
        if len(shards) != ring.num_shards:
            raise ConfigurationError(
                f"{len(shards)} shard transports for a {ring.num_shards}-shard ring"
            )
        rank_counts = {transport.num_server_ranks for transport in shards}
        if len(rank_counts) != 1:
            raise ConfigurationError("every shard must expose the same rank count")
        self.shards = list(shards)
        self.ring = ring
        self.num_server_ranks = rank_counts.pop()
        #: Kills recorded through :meth:`record_unresponsive_kill` — the
        #: launcher reports them without a client id, so they are counted
        #: here and folded into the aggregate stats.
        self._kill_lock = threading.Lock()
        self._unresponsive_kills = 0

    # ----------------------------------------------------------------- routing
    def shard_for(self, client_id: int) -> int:
        """Ring lookup: the shard index owning ``client_id``."""
        return self.ring.shard_for(client_id)

    def transport_for(self, client_id: int) -> Transport:
        """The shard transport owning ``client_id``."""
        return self.shards[self.ring.shard_for(client_id)]

    # ------------------------------------------------------------------ client
    def connect(self, client_id: int, batch_size: int = 1) -> Connection:
        return self.transport_for(client_id).connect(client_id, batch_size=batch_size)

    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        self.transport_for(message.client_id).push(rank, message, timeout=timeout)

    def push_many(self, rank: int, messages: List[Message],
                  timeout: float | None = None) -> None:
        # Routed message by message: a mixed-client batch may span shards.
        # Study traffic never takes this path (clients push through the
        # connection returned by ``connect``, already bound to one shard).
        for message in messages:
            self.push(rank, message, timeout=timeout)

    def release_client(self, client_id: int) -> None:
        """Recycle a permanently failed client's lease on its owning shard."""
        release = getattr(self.transport_for(client_id), "release_client", None)
        if release is not None:
            release(client_id)

    def record_unresponsive_kill(self) -> None:
        with self._kill_lock:
            self._unresponsive_kills += 1

    @property
    def unresponsive_kills_recorded(self) -> int:
        with self._kill_lock:
            return self._unresponsive_kills

    # ------------------------------------------------------------------ server
    def poll_many(self, rank: int, max_messages: int = 64,
                  timeout: float | None = 0.05) -> List[Message]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for transport in self.shards:
                messages = transport.poll_many(rank, max_messages=max_messages, timeout=0)
                if messages:
                    return messages
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(0.001)

    def pending(self, rank: int) -> int:
        return sum(transport.pending(rank) for transport in self.shards)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        for transport in self.shards:
            transport.close()

    def shutdown(self) -> None:
        for transport in self.shards:
            transport.shutdown()

    @property
    def closed(self) -> bool:
        return all(transport.closed for transport in self.shards)

    @property
    def stats(self) -> TransportStats:
        """Cluster totals over every shard, keyed by global rank."""
        return aggregate_transport_stats(
            [transport.stats for transport in self.shards],
            ranks_per_shard=self.num_server_ranks,
            extra_kills=self.unresponsive_kills_recorded,
        )


def aggregate_transport_stats(
    per_shard: Sequence[TransportStats],
    ranks_per_shard: int,
    extra_kills: int = 0,
) -> TransportStats:
    """Fold per-shard transport stats into one cluster-level snapshot.

    Scalar counters sum; the per-rank maps are re-keyed by *global* rank
    ``shard * ranks_per_shard + rank`` so no two shards collide and the
    aggregate still breaks down per aggregator thread.  ``extra_kills``
    adds kills recorded at the sharded front (the launcher's watchdog does
    not name a shard when it reports one).
    """
    total = TransportStats()
    for shard_index, stats in enumerate(per_shard):
        total.messages_routed += stats.messages_routed
        total.bytes_routed += stats.bytes_routed
        total.dropped_messages += stats.dropped_messages
        total.torn_batches += stats.torn_batches
        total.unresponsive_kills += stats.unresponsive_kills
        base = shard_index * int(ranks_per_shard)
        for rank, count in stats.per_rank_messages.items():
            total.per_rank_messages[base + rank] = count
        for rank, depth in stats.ring_depth_high_water.items():
            total.ring_depth_high_water[base + rank] = depth
    total.unresponsive_kills += int(extra_kills)
    return total


# ---------------------------------------------------------- heartbeat routing
class ShardedHeartbeatMonitor:
    """Routes liveness queries to the owning shard's heartbeat monitor.

    Each shard's aggregators feed their own
    :class:`~repro.server.fault.HeartbeatMonitor`; the launcher's watchdog
    holds this router and transparently asks the right shard, so the
    kill-and-restart protocol is unchanged by sharding.
    """

    def __init__(self, ring: HashRing, monitors: Sequence[object]) -> None:
        if len(monitors) != ring.num_shards:
            raise ConfigurationError(
                f"{len(monitors)} monitors for a {ring.num_shards}-shard ring"
            )
        self._ring = ring
        self._monitors = list(monitors)

    def _monitor(self, client_id: int):
        return self._monitors[self._ring.shard_for(client_id)]

    def touch(self, client_id: int, progress: float = 0.0,
              timestamp: float | None = None) -> None:
        self._monitor(client_id).touch(client_id, progress, timestamp)

    def mark_finished(self, client_id: int) -> None:
        self._monitor(client_id).mark_finished(client_id)

    def silence(self, client_id: int, now: float | None = None) -> float | None:
        return self._monitor(client_id).silence(client_id, now=now)

    def is_finished(self, client_id: int) -> bool:
        return self._monitor(client_id).is_finished(client_id)

    def unresponsive_clients(self, now: float | None = None) -> List[Tuple[int, float]]:
        merged: List[Tuple[int, float]] = []
        for monitor in self._monitors:
            merged.extend(monitor.unresponsive_clients(now=now))
        return sorted(merged)

    def tracked_clients(self) -> List[int]:
        tracked: set = set()
        for monitor in self._monitors:
            tracked.update(monitor.tracked_clients())
        return sorted(tracked)


# --------------------------------------------------------------- shard manager
class ShardManager:
    """Run ``num_shards`` independent training servers as one serving tier.

    The manager builds one transport and one
    :class:`~repro.server.server.TrainingServer` per shard from the shared
    base configuration (each shard's ``expected_clients`` comes from the
    ring assignment; buffer seeds and checkpoint directories are offset per
    shard so shards never alias), exposes the client-facing
    :class:`ShardedTransport` as :attr:`router` and the launcher-facing
    :class:`ShardedHeartbeatMonitor` as :attr:`heartbeat_monitor`, and
    merges the per-shard :class:`~repro.server.server.ServerResult` values
    into one study-level result: totals sum, stats aggregate by global
    rank, and the returned model is the best shard's (matching the
    ``best_val_mse`` the merged summary reports).
    """

    def __init__(
        self,
        server_config: ServerConfig,
        transport_config: TransportConfig,
        model_factory: Callable[[], Module],
        client_ids: Sequence[int],
        validation: Optional[ValidationSet] = None,
        max_concurrent_clients: int = 8,
        loss_factory: Callable[[], Loss] = MSELoss,
        optimizer_factory: Optional[Callable[[Module], Optimizer]] = None,
        scheduler_factory: Optional[Callable[[Optimizer], LRScheduler]] = None,
    ) -> None:
        self.num_shards = transport_config.shard.num_shards
        self.server_config = server_config
        self.transport_config = transport_config
        self.ring = HashRing(self.num_shards, replicas=transport_config.shard.hash_replicas)
        self.assignments = self.ring.partition(client_ids)
        self.transports: List[Transport] = [
            make_transport(
                transport_config.for_shard(index),
                server_config.num_ranks,
                max_concurrent_clients=max_concurrent_clients,
            )
            for index in range(self.num_shards)
        ]
        self.servers: List[TrainingServer] = [
            TrainingServer(
                config=self._shard_server_config(index),
                model_factory=model_factory,
                router=self.transports[index],
                validation=validation,
                loss_factory=loss_factory,
                optimizer_factory=optimizer_factory,
                scheduler_factory=scheduler_factory,
            )
            for index in range(self.num_shards)
        ]
        self.router = ShardedTransport(self.transports, self.ring)
        self.heartbeat_monitor = ShardedHeartbeatMonitor(
            self.ring, [server.heartbeat_monitor for server in self.servers]
        )
        self.per_shard_results: List[Optional[ServerResult]] = [None] * self.num_shards
        self._threads: List[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._errors: List[Optional[BaseException]] = [None] * self.num_shards

    def _shard_server_config(self, index: int) -> ServerConfig:
        """Specialise the base server config for shard ``index``.

        The buffer seed is offset by ``index * num_ranks`` so no two shards
        draw identical reservoir/batch sequences, and per-shard checkpoint
        directories keep rank files from colliding across shards.
        """
        base = self.server_config
        checkpoint_dir = base.checkpoint_dir
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir) / f"shard-{index}"
        return replace(
            base,
            expected_clients=len(self.assignments[index]),
            seed=base.seed + index * base.num_ranks,
            checkpoint_dir=checkpoint_dir,
        )

    # -------------------------------------------------------------------- run
    def _run_shard(self, index: int) -> None:
        try:
            result = self.servers[index].run()
        except BaseException as exc:  # noqa: BLE001 - reported from join()
            logger.exception("shard %d failed", index)
            with self._state_lock:
                self._errors[index] = exc
        else:
            with self._state_lock:
                self.per_shard_results[index] = result

    def start(self) -> None:
        """Start every shard's server on its own thread (non-blocking)."""
        if self._threads:
            raise RuntimeError("shard manager already started")
        for index in range(self.num_shards):
            thread = threading.Thread(
                target=self._run_shard, args=(index,), name=f"shard-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def join(self, timeout: Optional[float] = None) -> ServerResult:
        """Wait for every shard and return the merged cluster result."""
        if not self._threads:
            raise RuntimeError("shard manager was not started")
        for thread in self._threads:
            thread.join(timeout=timeout)
        with self._state_lock:
            errors = [error for error in self._errors if error is not None]
            results = list(self.per_shard_results)
        if errors:
            raise errors[0]
        if any(result is None for result in results):
            raise RuntimeError("a shard did not complete within the join timeout")
        return self._merge(results)

    def run(self) -> ServerResult:
        """Run every shard to completion (blocking); returns the merged result."""
        self.start()
        return self.join()

    # ------------------------------------------------------------------ merge
    def _merge(self, results: Sequence[ServerResult]) -> ServerResult:
        per_rank = [metrics for result in results for metrics in result.per_rank_metrics]
        summary = merge_worker_metrics(per_rank, num_shards=self.num_shards)
        stats = aggregate_transport_stats(
            [result.transport_stats for result in results],
            ranks_per_shard=self.server_config.num_ranks,
            extra_kills=self.router.unresponsive_kills_recorded,
        )
        best_index = 0
        best_loss = float("inf")
        for index, result in enumerate(results):
            loss = result.best_validation_loss
            if loss == loss and loss < best_loss:  # NaN-safe strict improvement
                best_index, best_loss = index, loss
        return ServerResult(
            model=results[best_index].model,
            per_rank_metrics=per_rank,
            aggregator_stats=[s for result in results for s in result.aggregator_stats],
            buffer_snapshots=[b for result in results for b in result.buffer_snapshots],
            transport_stats=stats,
            summary=summary,
            duplicates_discarded=sum(result.duplicates_discarded for result in results),
        )


# ----------------------------------------------------------- cluster placement
@dataclass(frozen=True)
class ShardPlacement:
    """Where one shard landed on the simulated cluster."""

    shard: int
    partition: str
    cores: int
    gpus: int
    job_id: int
    started: bool


@dataclass(frozen=True)
class ShardPlacementPlan:
    """Outcome of placing every shard on the simulated cluster."""

    placements: Tuple[ShardPlacement, ...]

    @property
    def concurrent_shards(self) -> int:
        """Shards the cluster can actually run at once (started jobs)."""
        return sum(1 for placement in self.placements if placement.started)


def place_shards(
    cluster: ClusterSpec,
    num_shards: int,
    partition: Optional[str] = None,
    cores_per_shard: int = 1,
    gpus_per_shard: int = 1,
    scheduler: Optional[BatchScheduler] = None,
) -> ShardPlacementPlan:
    """Place one server job per shard on the simulated cluster.

    Reuses the batch-scheduler machinery of the Table 2 experiments: each
    shard submits a job requesting ``cores_per_shard``/``gpus_per_shard``
    on ``partition`` (default: the first partition with GPUs, else the
    first partition).  Jobs that start immediately are the shards the
    cluster can serve concurrently; the rest queue — the saturation model
    caps aggregate throughput at the concurrent count.
    """
    from repro.cluster.job import Job

    if num_shards <= 0:
        raise ConfigurationError("num_shards must be positive")
    if partition is None:
        gpu_partitions = [
            name for name, part in cluster.partitions.items() if part.total_gpus > 0
        ]
        candidates = gpu_partitions or list(cluster.partitions)
        if not candidates:
            raise ConfigurationError("the cluster has no partitions to place shards on")
        partition = candidates[0]
    scheduler = scheduler or BatchScheduler(cluster)
    placements = []
    for shard in range(num_shards):
        job = scheduler.submit(
            Job(
                name=f"server-shard-{shard}",
                partition=partition,
                cores=cores_per_shard,
                gpus=gpus_per_shard,
                runtime=1.0,
                payload={"shard": shard},
            )
        )
        placements.append(
            ShardPlacement(
                shard=shard,
                partition=partition,
                cores=cores_per_shard,
                gpus=gpus_per_shard,
                job_id=job.job_id,
                started=job.start_time is not None,
            )
        )
    return ShardPlacementPlan(placements=tuple(placements))


# ------------------------------------------------------------ saturation model
@dataclass(frozen=True)
class ShardedThroughputEstimate:
    """Saturation-model output of :func:`estimate_sharded_throughput`."""

    offered: Dict[int, float]
    served: Dict[int, float]
    aggregate: float


def estimate_sharded_throughput(
    ring: HashRing,
    client_rates: Mapping[int, float],
    per_shard_rate: float,
    concurrent_shards: Optional[int] = None,
) -> ShardedThroughputEstimate:
    """Aggregate msg/s of the sharded tier under a saturation model.

    Every client offers its rate to the shard the *real* ring assigns it
    to; a shard serves ``min(offered, per_shard_rate)`` (one aggregator
    pipeline saturates at the measured single-shard drain rate, the
    calibration input).  ``concurrent_shards`` — typically
    :attr:`ShardPlacementPlan.concurrent_shards` — caps the whole tier when
    the cluster cannot host every shard at once.
    """
    if per_shard_rate <= 0:
        raise ConfigurationError("per_shard_rate must be positive")
    offered: Dict[int, float] = {shard: 0.0 for shard in ring.shards}
    for client_id, rate in client_rates.items():
        offered[ring.shard_for(client_id)] += float(rate)
    served = {shard: min(load, float(per_shard_rate)) for shard, load in offered.items()}
    aggregate = sum(served.values())
    if concurrent_shards is not None and concurrent_shards < ring.num_shards:
        aggregate = min(aggregate, float(per_shard_rate) * max(0, int(concurrent_shards)))
    return ShardedThroughputEstimate(offered=offered, served=served, aggregate=aggregate)
