"""Validation of the surrogate on held-out simulations.

The paper's validation set is 10 simulations generated offline and never seen
during training; validation runs every 100 batches on the training thread (and
therefore stalls batch consumption, a perturbation the experiments discuss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module

Array = np.ndarray


@dataclass
class ValidationSet:
    """Inputs/targets of the held-out simulations, as dense arrays."""

    inputs: Array
    targets: Array

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=np.float32)
        self.targets = np.asarray(self.targets, dtype=np.float32)
        if self.inputs.shape[0] != self.targets.shape[0]:
            raise ValueError(
                f"inputs and targets disagree on the number of samples: "
                f"{self.inputs.shape[0]} vs {self.targets.shape[0]}"
            )
        if self.inputs.shape[0] == 0:
            raise ValueError("validation set is empty")

    @property
    def num_samples(self) -> int:
        return int(self.inputs.shape[0])

    @staticmethod
    def from_simulations(
        parameter_vectors: Sequence[Array],
        times: Sequence[Array],
        fields: Sequence[Array],
    ) -> "ValidationSet":
        """Build a validation set from per-simulation arrays.

        ``parameter_vectors[i]`` is the 5-vector ``X`` of simulation ``i``;
        ``times[i]`` the array of time values; ``fields[i]`` the stacked
        flattened fields of shape ``(num_steps, field_size)``.
        """
        inputs = []
        targets = []
        for params, sim_times, sim_fields in zip(parameter_vectors, times, fields, strict=True):
            params = np.asarray(params, dtype=np.float32).ravel()
            sim_fields = np.asarray(sim_fields, dtype=np.float32)
            sim_fields = sim_fields.reshape(sim_fields.shape[0], -1)
            for time_value, field in zip(np.asarray(sim_times), sim_fields, strict=True):
                inputs.append(np.concatenate([params, [np.float32(time_value)]]))
                targets.append(field)
        return ValidationSet(inputs=np.stack(inputs), targets=np.stack(targets))


class Validator:
    """Evaluate a model on a validation set in mini-batches."""

    def __init__(self, dataset: ValidationSet, loss: Loss | None = None, batch_size: int = 64) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.loss = loss or MSELoss()
        self.batch_size = int(batch_size)

    def evaluate(self, model: Module) -> float:
        """Mean loss of ``model`` over the validation set (eval mode, no grads)."""
        was_training = model.training
        model.eval()
        total = 0.0
        count = 0
        inputs, targets = self.dataset.inputs, self.dataset.targets
        for start in range(0, inputs.shape[0], self.batch_size):
            stop = min(start + self.batch_size, inputs.shape[0])
            predictions = model.forward(inputs[start:stop])
            batch_loss = self.loss.forward(predictions, targets[start:stop])
            total += batch_loss * (stop - start)
            count += stop - start
        if was_training:
            model.train()
        return total / count
