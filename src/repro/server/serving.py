"""Asyncio serving tier: the TCP front door of the training server.

:class:`AsyncFrontDoor` runs an ``asyncio`` accept loop in one daemon thread
of the **server** process.  Each accepted connection is a per-client reader
task that

1. reads the handshake frame (client id + dedup epoch, see
   :mod:`repro.parallel.framing`) and registers the client with the sink;
2. then streams batch frames — header, body — and enqueues them on the
   sink's per-rank channels, where the aggregator threads drain them through
   the normal ``poll_batches``/columnar decode path.

Back-pressure is per connection: when a rank channel is full the reader task
simply stops reading that socket (an async sleep-retry loop), the kernel's
TCP window fills, and the remote client's ``sendall`` blocks — the socket
equivalent of the ZMQ high-water-mark contract the other backends model with
bounded queues.  Other connections keep streaming meanwhile.

Failure semantics: a connection that ends mid-frame (client killed between
``send`` calls of one frame) counts one torn batch, exactly like a
shared-memory ring writer killed mid-commit; a protocol violation (bad
magic, oversized length, unknown kind) drops the connection and counts one
rejected frame.  Both leave the accept loop and every other connection
running.

The sink is duck-typed (in practice
:class:`repro.parallel.tcp_transport.TcpTransport`) and must provide
``num_server_ranks``, ``closed``, ``try_enqueue(rank, entry)``,
``register_client(client_id, epoch, peer)``, ``record_torn_frame()`` and
``record_rejected_frame()``; every one of those calls must be safe to make
from the event-loop thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Set, Tuple

from repro.parallel import framing
from repro.utils.exceptions import ReproError
from repro.utils.logging import get_logger

logger = get_logger("server.serving")

#: How often a reader task re-probes a full rank channel.  Short enough that
#: drained channels resume the socket promptly, long enough that a stalled
#: aggregator does not spin the event loop.
_BACKPRESSURE_POLL = 0.005

#: Bound on waiting for the accept loop to come up or tear down.
_LIFECYCLE_TIMEOUT = 30.0


class AsyncFrontDoor:
    """Accept loop + per-connection reader tasks feeding a transport sink."""

    def __init__(
        self,
        sink,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = framing.MAX_FRAME_BYTES,
    ) -> None:
        self._sink = sink
        self._host = host
        self._port = int(port)
        self._max_frame_bytes = int(max_frame_bytes)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None
        # Reader-task bookkeeping, touched only from the event-loop thread.
        self._tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound (host, port) once started (resolves ``port=0`` binds)."""
        return self._address

    def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the resolved (host, port)."""
        if self._thread is not None:
            raise RuntimeError("front door already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-tcp-front-door", daemon=True
        )
        self._thread.start()
        self._started.wait(_LIFECYCLE_TIMEOUT)
        if self._error is not None:
            raise self._error
        if self._address is None:
            raise ReproError("tcp front door failed to start within the lifecycle timeout")
        return self._address

    def stop(self, timeout: float = _LIFECYCLE_TIMEOUT) -> None:
        """Stop accepting, cancel the reader tasks and join the loop thread."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._request_stop)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        thread.join(timeout)
        if thread.is_alive():
            logger.warning("tcp front door thread did not stop within %.1fs", timeout)

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()/logs
            self._error = exc
            logger.warning("tcp front door terminated: %s", exc, exc_info=True)
        finally:
            self._loop = None
            loop.close()
            self._started.set()  # unblock a start() waiting on a failed bind

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._serve, self._host, self._port)
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)
            try:
                await server.wait_closed()
            except (asyncio.CancelledError, RuntimeError):
                pass

    # ----------------------------------------------------------- connections
    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        peer = writer.get_extra_info("peername")
        try:
            await self._serve_connection(reader, peer)
        except asyncio.CancelledError:
            pass  # shutdown path: close the socket quietly
        except asyncio.IncompleteReadError:
            # EOF landed inside a frame: the client died mid-send, exactly a
            # ring writer killed mid-commit.  EOF *between* frames is a clean
            # close and never reaches here.
            self._sink.record_torn_frame()
            logger.warning("connection %s: stream ended mid-frame (torn batch)", peer)
        except framing.FrameError as exc:
            self._sink.record_rejected_frame()
            logger.warning("connection %s: protocol violation, dropping: %s", peer, exc)
        except (ConnectionError, OSError) as exc:
            self._sink.record_torn_frame()
            logger.warning("connection %s: reset mid-stream: %s", peer, exc)
        finally:
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader, peer) -> None:
        frame = await self._read_frame(reader)
        if frame is None:
            return  # connected and went away without a handshake
        kind, flags, rank, body, raw_len, wire_nbytes = frame
        if kind != framing.KIND_HELLO or flags != 0:
            raise framing.FrameError("first frame must be an uncompressed hello")
        client_id, epoch = framing.decode_hello(body)
        self._sink.register_client(client_id, epoch, peer)
        logger.debug("connection %s: client %d (epoch %d) connected", peer, client_id, epoch)
        while True:
            frame = await self._read_frame(reader)
            if frame is None:
                return  # clean close between frames
            kind, flags, rank, body, raw_len, wire_nbytes = frame
            if kind != framing.KIND_BATCH:
                raise framing.FrameError(f"unexpected frame kind {kind} after handshake")
            if not 0 <= rank < self._sink.num_server_ranks:
                raise framing.FrameError(f"frame rank {rank} out of range")
            await self._enqueue(rank, (body, flags, raw_len, wire_nbytes))

    async def _read_frame(self, reader: asyncio.StreamReader):
        """Read one frame; ``None`` on a clean EOF at a frame boundary."""
        try:
            header = await reader.readexactly(framing.FRAME_HEADER_BYTES)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise  # torn: some header bytes arrived, the rest never will
            return None
        kind, flags, rank, body_len, raw_len = framing.parse_header(header)
        if body_len > self._max_frame_bytes:
            raise framing.FrameError(
                f"frame body of {body_len} bytes exceeds this front door's cap"
            )
        body = await reader.readexactly(body_len) if body_len else b""
        return kind, flags, rank, body, raw_len, framing.FRAME_HEADER_BYTES + body_len

    async def _enqueue(self, rank: int, entry) -> None:
        """Hand one frame to the sink, applying per-connection back-pressure."""
        while not self._sink.try_enqueue(rank, entry):
            if self._sink.closed or (self._stop_event is not None
                                     and self._stop_event.is_set()):
                # Tearing down: account the undeliverable frame as dropped
                # instead of spinning against a channel nobody drains.
                self._sink.record_rejected_frame()
                return
            await asyncio.sleep(_BACKPRESSURE_POLL)
