"""Data-aggregator thread of a server rank.

The aggregator polls the transport queue of its rank, converts the incoming
:class:`TimeStepMessage` payloads into :class:`SampleRecord` training samples,
discards duplicates caused by client restarts, feeds the rank-local training
buffer and signals the buffer when every expected client has finished.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.buffers.base import SampleRecord, TrainingBuffer
from repro.buffers.columns import ColumnBatch
from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, Message, TimeStepMessage
from repro.parallel.transport import Transport
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.utils.exceptions import BufferClosedError
from repro.utils.logging import get_logger

logger = get_logger("server.aggregator")

Array = np.ndarray


@dataclass
class AggregatorStats:
    """Counters maintained by one aggregator thread."""

    samples_received: int = 0
    bytes_received: int = 0
    duplicates_discarded: int = 0
    #: Samples drained from the transport but abandoned because the
    #: aggregator was stopped while waiting for buffer space.
    samples_dropped: int = 0
    clients_seen: Set[int] = field(default_factory=set)
    clients_finished: Set[int] = field(default_factory=set)


class DataAggregator:
    """Receive client data for one server rank and fill its training buffer.

    Parameters
    ----------
    rank:
        Server rank this aggregator serves.
    router:
        Transport router shared with the clients.
    buffer:
        The rank-local training buffer (FIFO/FIRO/Reservoir).
    expected_clients:
        Total number of ensemble members the study will run; the aggregator
        signals end-of-reception to the buffer once a ``ClientFinished`` was
        seen from each of them.
    poll_timeout:
        Polling timeout of the transport queue in seconds.
    heartbeat_monitor:
        Optional liveness tracker shared with the fault-handling logic.
    max_drain:
        Maximum number of transport messages drained per loop iteration; the
        time-step messages of one chunk are inserted into the buffer with a
        single :meth:`TrainingBuffer.put_many` call.
    put_retry_timeout:
        Bound on each wait for buffer space, so a full buffer never keeps the
        thread from noticing a stop request.
    """

    def __init__(
        self,
        rank: int,
        router: Transport,
        buffer: TrainingBuffer,
        expected_clients: int,
        poll_timeout: float = 0.02,
        heartbeat_monitor: Optional[HeartbeatMonitor] = None,
        message_log: Optional[MessageLog] = None,
        max_drain: int = 64,
        put_retry_timeout: float = 0.2,
    ) -> None:
        self.rank = int(rank)
        self.router = router
        self.buffer = buffer
        self.expected_clients = int(expected_clients)
        self.poll_timeout = float(poll_timeout)
        self.heartbeat_monitor = heartbeat_monitor
        self.message_log = message_log or MessageLog()
        self.max_drain = int(max_drain)
        self.put_retry_timeout = float(put_retry_timeout)
        self.stats = AggregatorStats()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Ownership contract with the transport: when the backend guarantees
        # that polled payloads are message-owned (see
        # ``Transport.payloads_owned``), records adopt the payload views
        # directly — the one batched copy already happened at
        # deserialisation time.  Otherwise payload views are copied out
        # defensively before they enter the buffer.
        self._adopt_payloads = bool(getattr(router, "payloads_owned", False))

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the aggregator thread."""
        if self._thread is not None:
            raise RuntimeError("aggregator already started")
        self._thread = threading.Thread(
            target=self._run, name=f"aggregator-rank-{self.rank}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Request the aggregator to stop and wait for the thread to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def reception_complete(self) -> bool:
        """True once every expected client announced completion."""
        return len(self.stats.clients_finished) >= self.expected_clients

    # ------------------------------------------------------------------ logic
    def _run(self) -> None:
        while not self._stop.is_set():
            items = self.router.poll_batches(
                self.rank, max_messages=self.max_drain, timeout=self.poll_timeout
            )
            if not items:
                if self.reception_complete:
                    break
                continue
            try:
                self._handle_items(items)
            except BufferClosedError:
                break
        # Whatever the exit reason, make sure the training thread is unblocked.
        if self.reception_complete:
            self.buffer.signal_reception_over()

    def _handle_items(self, items: List[object]) -> None:
        """Process one columnar drain: samples arrive as :class:`ColumnBatch`
        chunks (the common case) and/or plain messages, in arrival order.

        At most one kind of sample run is pending at a time — a kind switch
        flushes the other kind first, so arrival order is preserved in the
        buffer.  Consecutive chunks with matching column shapes are merged
        into one :meth:`_ingest_columns` call (one dedup pass, one
        ``put_many``); pending samples of either kind are flushed before a
        ``ClientFinished`` for the same reason as in :meth:`_handle_many`.
        """
        steps: List[TimeStepMessage] = []
        chunks: List[ColumnBatch] = []

        def flush_pending() -> None:
            nonlocal steps, chunks
            if steps:
                self._flush(*self._records_from_steps(steps))
                steps = []
            if chunks:
                merged = chunks[0] if len(chunks) == 1 else ColumnBatch.concat(chunks)
                chunks = []
                self._ingest_columns(merged)

        for item in items:
            if isinstance(item, ColumnBatch):
                if steps or (chunks and not chunks[-1].compatible_with(item)):
                    flush_pending()
                chunks.append(item)
            elif isinstance(item, TimeStepMessage):
                if chunks:
                    flush_pending()
                steps.append(item)
            else:
                if isinstance(item, ClientFinished):
                    flush_pending()
                self._handle_control(item)
        flush_pending()

    def _handle_many(self, messages: List[Message]) -> None:
        """Process one drained chunk: bulk-insert samples, dispatch control.

        Consecutive time-step messages are converted **as one batch** (one
        vectorized inputs matrix, payload views adopted without per-message
        copies — see :meth:`_records_from_steps`) and inserted with a single
        ``put_many``.  Pending samples are flushed before a
        ``ClientFinished`` so that the message which may flip the buffer into
        drain mode always observes every sample received before it; other
        control messages (hello, heartbeat) never touch the buffer and are
        dispatched without fragmenting the bulk insert.
        """
        steps: List[TimeStepMessage] = []
        for message in messages:
            if isinstance(message, TimeStepMessage):
                steps.append(message)
            else:
                if steps and isinstance(message, ClientFinished):
                    self._flush(*self._records_from_steps(steps))
                    steps = []
                self._handle_control(message)
        if steps:
            self._flush(*self._records_from_steps(steps))

    def _records_from_steps(
        self, steps: List[TimeStepMessage]
    ) -> tuple[List[SampleRecord], List[int]]:
        """Convert a run of time-step messages into records, batch-wise.

        Deduplication and liveness bookkeeping stay per message; the
        allocations do not: all ``(X, t)`` input vectors of the run land in
        one float32 matrix built with a single ``np.asarray`` call (records
        hold row views), and payloads are **adopted** — the transport already
        copied the chunk's payload block once at deserialisation, so the
        views go straight into the records with no further copying.  With a
        transport that hands out borrowed or foreign views instead, each
        payload is copied out defensively, as before.
        """
        monitor = self.heartbeat_monitor
        register = self.message_log.register
        seen = self.stats.clients_seen
        fresh: List[TimeStepMessage] = []
        for message in steps:
            seen.add(message.client_id)
            if monitor is not None:
                monitor.touch(message.client_id, progress=float(message.time_step))
            if register(message.client_id, message.time_step):
                fresh.append(message)
            else:
                self.stats.duplicates_discarded += 1
        if not fresh:
            return [], []

        n_params = len(fresh[0].parameters)
        if all(len(m.parameters) == n_params for m in fresh):
            flat: List[float] = []
            for message in fresh:
                flat.extend(message.parameters)
                flat.append(message.time_value)
            inputs = np.asarray(flat, dtype=np.float32)
            input_rows: List[Array] = list(inputs.reshape(len(fresh), n_params + 1))
        else:  # mixed ensembles: fall back to per-message input vectors
            input_rows = [message.sample_input() for message in fresh]

        adopt = self._adopt_payloads
        records: List[SampleRecord] = []
        sizes: List[int] = []
        for row, message in zip(input_rows, fresh, strict=True):
            target = message.payload
            if target.dtype != np.float32:
                target = np.asarray(target, dtype=np.float32)
            if not adopt and target.base is not None:
                # Borrowed view (e.g. into a shared transport buffer): a
                # buffer-resident record must not pin or alias it.
                target = target.copy()
            records.append(
                SampleRecord(
                    inputs=row,
                    target=target,
                    source_id=message.client_id,
                    time_step=message.time_step,
                )
            )
            sizes.append(message.nbytes())
        return records, sizes

    def _ingest_columns(self, batch: ColumnBatch) -> None:
        """Dedup, liveness-track and buffer one columnar chunk, vectorised.

        The per-message bookkeeping loop of :meth:`_records_from_steps`
        becomes column arithmetic: client discovery is one ``np.unique`` over
        the id vector, liveness is one ``touch`` per distinct client with the
        maximum observed step, and deduplication is one
        :meth:`MessageLog.register_many` call whose keep-mask (if any)
        compresses the batch before it enters the buffer.
        """
        if not len(batch):
            return
        ids = batch.source_ids
        steps = batch.time_steps
        unique = np.unique(ids)
        self.stats.clients_seen.update(unique.tolist())
        if self.heartbeat_monitor is not None:
            if len(unique) == 1:
                self.heartbeat_monitor.touch(int(unique[0]), progress=float(steps.max()))
            else:
                for cid in unique.tolist():
                    self.heartbeat_monitor.touch(
                        cid, progress=float(steps[ids == cid].max())
                    )
        keep = self.message_log.register_many(ids, steps)
        if keep is not None:
            kept = int(keep.sum())
            self.stats.duplicates_discarded += len(batch) - kept
            if not kept:
                return
            batch = batch.compress(keep)
        # Wire-equivalent size of one row, mirroring TimeStepMessage.nbytes():
        # f32 payload + f64 parameters (inputs minus the time column) + header.
        row_nbytes = 4 * batch.targets.shape[1] + 8 * (batch.inputs.shape[1] - 1) + 32
        self._flush_columns(batch, row_nbytes)

    def _flush_columns(self, batch: ColumnBatch, row_nbytes: int) -> None:
        """Columnar twin of :meth:`_flush`: bounded waits, drop on stop."""
        offset = 0
        total = len(batch)
        while offset < total:
            if self._stop.is_set():
                self.stats.samples_dropped += total - offset
                return
            try:
                inserted = self.buffer.put_many(
                    batch[offset:], timeout=self.put_retry_timeout
                )
            except BufferClosedError:
                self.stats.samples_dropped += total - offset
                raise
            self.stats.samples_received += inserted
            self.stats.bytes_received += row_nbytes * inserted
            offset += inserted

    def _flush(self, records: List[SampleRecord], sizes: List[int]) -> None:
        """Insert ``records`` into the buffer, staying responsive to stop().

        Each wait for buffer space is bounded by ``put_retry_timeout``; when a
        stop is requested while the buffer is full, the remaining samples are
        dropped (counted in ``stats.samples_dropped``) instead of blocking
        shutdown forever.
        """
        offset = 0
        while offset < len(records):
            if self._stop.is_set():
                self.stats.samples_dropped += len(records) - offset
                return
            try:
                inserted = self.buffer.put_many(
                    records[offset:], timeout=self.put_retry_timeout
                )
            except BufferClosedError:
                # Abort path: the remainder can never be inserted — account
                # for it before the error unwinds the receive loop.
                self.stats.samples_dropped += len(records) - offset
                raise
            self.stats.samples_received += inserted
            self.stats.bytes_received += sum(sizes[offset : offset + inserted])
            offset += inserted

    def _handle(self, message: Message) -> None:
        """Process a single message (kept for tests and external callers)."""
        self._handle_many([message])

    def _handle_control(self, message: Message) -> None:
        if isinstance(message, ClientHello):
            self.stats.clients_seen.add(message.client_id)
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.touch(message.client_id)
        elif isinstance(message, ClientFinished):
            self.stats.clients_finished.add(message.client_id)
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.mark_finished(message.client_id)
            if self.reception_complete:
                self.buffer.signal_reception_over()
        elif isinstance(message, Heartbeat):
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.touch(
                    message.client_id, progress=message.progress, timestamp=message.timestamp
                )
        else:  # pragma: no cover - defensive
            logger.warning("rank %d aggregator ignoring unknown message %r", self.rank, message)
