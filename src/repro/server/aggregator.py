"""Data-aggregator thread of a server rank.

The aggregator polls the transport queue of its rank, converts the incoming
:class:`TimeStepMessage` payloads into :class:`SampleRecord` training samples,
discards duplicates caused by client restarts, feeds the rank-local training
buffer and signals the buffer when every expected client has finished.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Set

import numpy as np

from repro.buffers.base import SampleRecord, TrainingBuffer
from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, Message, TimeStepMessage
from repro.parallel.transport import MessageRouter
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.utils.exceptions import BufferClosedError
from repro.utils.logging import get_logger

logger = get_logger("server.aggregator")


@dataclass
class AggregatorStats:
    """Counters maintained by one aggregator thread."""

    samples_received: int = 0
    bytes_received: int = 0
    duplicates_discarded: int = 0
    clients_seen: Set[int] = field(default_factory=set)
    clients_finished: Set[int] = field(default_factory=set)


class DataAggregator:
    """Receive client data for one server rank and fill its training buffer.

    Parameters
    ----------
    rank:
        Server rank this aggregator serves.
    router:
        Transport router shared with the clients.
    buffer:
        The rank-local training buffer (FIFO/FIRO/Reservoir).
    expected_clients:
        Total number of ensemble members the study will run; the aggregator
        signals end-of-reception to the buffer once a ``ClientFinished`` was
        seen from each of them.
    poll_timeout:
        Polling timeout of the transport queue in seconds.
    heartbeat_monitor:
        Optional liveness tracker shared with the fault-handling logic.
    """

    def __init__(
        self,
        rank: int,
        router: MessageRouter,
        buffer: TrainingBuffer,
        expected_clients: int,
        poll_timeout: float = 0.02,
        heartbeat_monitor: Optional[HeartbeatMonitor] = None,
        message_log: Optional[MessageLog] = None,
    ) -> None:
        self.rank = int(rank)
        self.router = router
        self.buffer = buffer
        self.expected_clients = int(expected_clients)
        self.poll_timeout = float(poll_timeout)
        self.heartbeat_monitor = heartbeat_monitor
        self.message_log = message_log or MessageLog()
        self.stats = AggregatorStats()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the aggregator thread."""
        if self._thread is not None:
            raise RuntimeError("aggregator already started")
        self._thread = threading.Thread(
            target=self._run, name=f"aggregator-rank-{self.rank}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Request the aggregator to stop and wait for the thread to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def reception_complete(self) -> bool:
        """True once every expected client announced completion."""
        return len(self.stats.clients_finished) >= self.expected_clients

    # ------------------------------------------------------------------ logic
    def _run(self) -> None:
        while not self._stop.is_set():
            message = self.router.poll(self.rank, timeout=self.poll_timeout)
            if message is None:
                if self.reception_complete:
                    break
                continue
            try:
                self._handle(message)
            except BufferClosedError:
                break
        # Whatever the exit reason, make sure the training thread is unblocked.
        if self.reception_complete:
            self.buffer.signal_reception_over()

    def _handle(self, message: Message) -> None:
        if isinstance(message, TimeStepMessage):
            self._handle_time_step(message)
        elif isinstance(message, ClientHello):
            self.stats.clients_seen.add(message.client_id)
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.touch(message.client_id)
        elif isinstance(message, ClientFinished):
            self.stats.clients_finished.add(message.client_id)
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.mark_finished(message.client_id)
            if self.reception_complete:
                self.buffer.signal_reception_over()
        elif isinstance(message, Heartbeat):
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.touch(
                    message.client_id, progress=message.progress, timestamp=message.timestamp
                )
        else:  # pragma: no cover - defensive
            logger.warning("rank %d aggregator ignoring unknown message %r", self.rank, message)

    def _handle_time_step(self, message: TimeStepMessage) -> None:
        self.stats.clients_seen.add(message.client_id)
        if self.heartbeat_monitor is not None:
            self.heartbeat_monitor.touch(message.client_id, progress=float(message.time_step))
        if not self.message_log.register(message.client_id, message.time_step):
            self.stats.duplicates_discarded += 1
            return
        record = SampleRecord(
            inputs=message.sample_input(),
            target=np.asarray(message.payload, dtype=np.float32),
            source_id=message.client_id,
            time_step=message.time_step,
        )
        self.buffer.put(record)
        self.stats.samples_received += 1
        self.stats.bytes_received += message.nbytes()
