"""Data-aggregator thread of a server rank.

The aggregator polls the transport queue of its rank, converts the incoming
:class:`TimeStepMessage` payloads into :class:`SampleRecord` training samples,
discards duplicates caused by client restarts, feeds the rank-local training
buffer and signals the buffer when every expected client has finished.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.buffers.base import SampleRecord, TrainingBuffer
from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, Message, TimeStepMessage
from repro.parallel.transport import Transport
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.utils.exceptions import BufferClosedError
from repro.utils.logging import get_logger

logger = get_logger("server.aggregator")


@dataclass
class AggregatorStats:
    """Counters maintained by one aggregator thread."""

    samples_received: int = 0
    bytes_received: int = 0
    duplicates_discarded: int = 0
    #: Samples drained from the transport but abandoned because the
    #: aggregator was stopped while waiting for buffer space.
    samples_dropped: int = 0
    clients_seen: Set[int] = field(default_factory=set)
    clients_finished: Set[int] = field(default_factory=set)


class DataAggregator:
    """Receive client data for one server rank and fill its training buffer.

    Parameters
    ----------
    rank:
        Server rank this aggregator serves.
    router:
        Transport router shared with the clients.
    buffer:
        The rank-local training buffer (FIFO/FIRO/Reservoir).
    expected_clients:
        Total number of ensemble members the study will run; the aggregator
        signals end-of-reception to the buffer once a ``ClientFinished`` was
        seen from each of them.
    poll_timeout:
        Polling timeout of the transport queue in seconds.
    heartbeat_monitor:
        Optional liveness tracker shared with the fault-handling logic.
    max_drain:
        Maximum number of transport messages drained per loop iteration; the
        time-step messages of one chunk are inserted into the buffer with a
        single :meth:`TrainingBuffer.put_many` call.
    put_retry_timeout:
        Bound on each wait for buffer space, so a full buffer never keeps the
        thread from noticing a stop request.
    """

    def __init__(
        self,
        rank: int,
        router: Transport,
        buffer: TrainingBuffer,
        expected_clients: int,
        poll_timeout: float = 0.02,
        heartbeat_monitor: Optional[HeartbeatMonitor] = None,
        message_log: Optional[MessageLog] = None,
        max_drain: int = 64,
        put_retry_timeout: float = 0.2,
    ) -> None:
        self.rank = int(rank)
        self.router = router
        self.buffer = buffer
        self.expected_clients = int(expected_clients)
        self.poll_timeout = float(poll_timeout)
        self.heartbeat_monitor = heartbeat_monitor
        self.message_log = message_log or MessageLog()
        self.max_drain = int(max_drain)
        self.put_retry_timeout = float(put_retry_timeout)
        self.stats = AggregatorStats()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the aggregator thread."""
        if self._thread is not None:
            raise RuntimeError("aggregator already started")
        self._thread = threading.Thread(
            target=self._run, name=f"aggregator-rank-{self.rank}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Request the aggregator to stop and wait for the thread to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def reception_complete(self) -> bool:
        """True once every expected client announced completion."""
        return len(self.stats.clients_finished) >= self.expected_clients

    # ------------------------------------------------------------------ logic
    def _run(self) -> None:
        while not self._stop.is_set():
            messages = self.router.poll_many(
                self.rank, max_messages=self.max_drain, timeout=self.poll_timeout
            )
            if not messages:
                if self.reception_complete:
                    break
                continue
            try:
                self._handle_many(messages)
            except BufferClosedError:
                break
        # Whatever the exit reason, make sure the training thread is unblocked.
        if self.reception_complete:
            self.buffer.signal_reception_over()

    def _handle_many(self, messages: List[Message]) -> None:
        """Process one drained chunk: bulk-insert samples, dispatch control.

        Consecutive time-step messages are converted and inserted with a
        single ``put_many``.  Pending samples are flushed before a
        ``ClientFinished`` so that the message which may flip the buffer into
        drain mode always observes every sample received before it; other
        control messages (hello, heartbeat) never touch the buffer and are
        dispatched without fragmenting the bulk insert.
        """
        records: List[SampleRecord] = []
        sizes: List[int] = []
        for message in messages:
            if isinstance(message, TimeStepMessage):
                record = self._record_from_time_step(message)
                if record is not None:
                    records.append(record)
                    sizes.append(message.nbytes())
            else:
                if records and isinstance(message, ClientFinished):
                    self._flush(records, sizes)
                    records, sizes = [], []
                self._handle_control(message)
        if records:
            self._flush(records, sizes)

    def _flush(self, records: List[SampleRecord], sizes: List[int]) -> None:
        """Insert ``records`` into the buffer, staying responsive to stop().

        Each wait for buffer space is bounded by ``put_retry_timeout``; when a
        stop is requested while the buffer is full, the remaining samples are
        dropped (counted in ``stats.samples_dropped``) instead of blocking
        shutdown forever.
        """
        offset = 0
        while offset < len(records):
            if self._stop.is_set():
                self.stats.samples_dropped += len(records) - offset
                return
            try:
                inserted = self.buffer.put_many(
                    records[offset:], timeout=self.put_retry_timeout
                )
            except BufferClosedError:
                # Abort path: the remainder can never be inserted — account
                # for it before the error unwinds the receive loop.
                self.stats.samples_dropped += len(records) - offset
                raise
            self.stats.samples_received += inserted
            self.stats.bytes_received += sum(sizes[offset : offset + inserted])
            offset += inserted

    def _record_from_time_step(self, message: TimeStepMessage) -> Optional[SampleRecord]:
        """Convert a time-step message to a sample; None for duplicates."""
        self.stats.clients_seen.add(message.client_id)
        if self.heartbeat_monitor is not None:
            self.heartbeat_monitor.touch(message.client_id, progress=float(message.time_step))
        if not self.message_log.register(message.client_id, message.time_step):
            self.stats.duplicates_discarded += 1
            return None
        target = np.asarray(message.payload, dtype=np.float32)
        if target.base is not None:
            # Unpacked payloads are views into their whole packed transport
            # batch; a buffer-resident record must not pin that batch alive.
            target = target.copy()
        return SampleRecord(
            inputs=message.sample_input(),
            target=target,
            source_id=message.client_id,
            time_step=message.time_step,
        )

    def _handle(self, message: Message) -> None:
        """Process a single message (kept for tests and external callers)."""
        self._handle_many([message])

    def _handle_control(self, message: Message) -> None:
        if isinstance(message, ClientHello):
            self.stats.clients_seen.add(message.client_id)
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.touch(message.client_id)
        elif isinstance(message, ClientFinished):
            self.stats.clients_finished.add(message.client_id)
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.mark_finished(message.client_id)
            if self.reception_complete:
                self.buffer.signal_reception_over()
        elif isinstance(message, Heartbeat):
            if self.heartbeat_monitor is not None:
                self.heartbeat_monitor.touch(
                    message.client_id, progress=message.progress, timestamp=message.timestamp
                )
        else:  # pragma: no cover - defensive
            logger.warning("rank %d aggregator ignoring unknown message %r", self.rank, message)
