"""Training thread of a server rank.

The training thread embeds a classical supervised loop whose only difference
with an offline loop is the data source: batches come from the training buffer
filled concurrently by the data-aggregator thread.  With several ranks the
workers synchronise gradients after every batch (synchronous data-parallel
training) and agree collectively on when to stop: training terminates once any
rank's buffer is exhausted (reception over and buffer empty), which is the
paper's termination condition applied to the data-parallel case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.buffers.base import TrainingBuffer, contiguous_rows
from repro.buffers.columns import ColumnBatch
from repro.buffers.stats import OccurrenceTracker
from repro.core.metrics import TrainingMetrics
from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler
from repro.parallel.communicator import ThreadCommunicator
from repro.server.checkpointing import ServerCheckpointer
from repro.server.ddp import broadcast_parameters, sync_gradients
from repro.server.validation import Validator
from repro.utils.timing import WallClock

Array = np.ndarray


@dataclass
class TrainerConfig:
    """Hyper-parameters of the online training loop.

    Attributes mirror the paper's experimental setup: batch size 10, initial
    learning rate 1e-3 halved on a fixed schedule, validation every 100
    batches, throughput measured over 10-batch windows.
    """

    batch_size: int = 10
    validation_interval: int = 100
    throughput_window: int = 10
    max_batches: Optional[int] = None
    get_timeout: float = 60.0
    record_population: bool = True
    track_occurrences: bool = True
    checkpoint_interval: int = 0
    #: Optional sleep per batch emulating the GPU compute cost of the paper's
    #: 514M-parameter surrogate (the scaled-down model trains much faster than
    #: the real one, which would distort the production/consumption balance).
    batch_compute_delay: float = 0.0


class TrainingWorker:
    """One rank's training thread (model replica + optimizer + buffer)."""

    def __init__(
        self,
        rank: int,
        model: Module,
        optimizer: Optimizer,
        buffer: TrainingBuffer,
        config: TrainerConfig,
        loss: Optional[Loss] = None,
        scheduler: Optional[LRScheduler] = None,
        validator: Optional[Validator] = None,
        comm: Optional[ThreadCommunicator] = None,
        checkpointer: Optional[ServerCheckpointer] = None,
        on_batch: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.rank = int(rank)
        self.model = model
        self.optimizer = optimizer
        self.buffer = buffer
        self.config = config
        self.loss = loss or MSELoss()
        self.scheduler = scheduler
        self.validator = validator
        self.comm = comm
        self.checkpointer = checkpointer
        self.on_batch = on_batch
        self.metrics = TrainingMetrics(rank=self.rank)
        self.metrics.throughput.window = config.throughput_window
        self.occurrences = OccurrenceTracker()
        self._clock = WallClock()
        # Preallocated float32 staging arrays reused by every _stack_batch
        # call (allocated lazily once the sample shapes are known).
        self._batch_inputs: Optional[Array] = None
        self._batch_targets: Optional[Array] = None

    # ------------------------------------------------------------------ batch
    def _stack_batch(self, batch) -> tuple[Array, Array]:
        """Stack a batch for the forward pass, without copying when possible.

        A dense :class:`ColumnBatch` drawn from the buffer **is** the stacked
        batch: its inputs matrix and targets block go to the nn forward pass
        as-is, with no per-record objects and no copy at all.  (An
        object-mode batch — ragged sample shapes — degrades to its record
        views and takes the paths below.)

        Records produced by the batched ingestion path hold row views into
        shared per-chunk blocks; a batch drawn in arrival order (FIFO, or
        any draw preserving adjacency) is therefore already contiguous in
        memory and is handed to the nn forward pass as a **zero-copy**
        strided view.  Other batches are gathered into the preallocated
        float32 staging arrays, which are overwritten by the next call —
        safe because forward/backward of one batch complete before the next
        batch is stacked (the same lifetime the zero-copy views rely on).
        """
        if isinstance(batch, ColumnBatch):
            if batch.is_dense:
                return batch.inputs, batch.targets
            batch = batch.records()
        count = len(batch)
        first = batch[0]
        if first.inputs.dtype in (np.float32, np.float64) and first.target.dtype == np.float32:
            inputs = contiguous_rows([record.inputs for record in batch])
            if inputs is not None:
                targets = contiguous_rows([record.target for record in batch])
                if targets is not None:
                    return inputs, targets
        input_shape = np.shape(first.inputs)
        target_shape = np.shape(first.target)
        if (
            self._batch_inputs is None
            or self._batch_inputs.shape[0] < count
            or self._batch_inputs.shape[1:] != input_shape
            or self._batch_targets.shape[1:] != target_shape
        ):
            rows = max(self.config.batch_size, count)
            self._batch_inputs = np.empty((rows,) + input_shape, dtype=np.float32)
            self._batch_targets = np.empty((rows,) + target_shape, dtype=np.float32)
        inputs = self._batch_inputs[:count]
        targets = self._batch_targets[:count]
        for row, record in enumerate(batch):
            inputs[row] = record.inputs
            targets[row] = record.target
        return inputs, targets

    def _train_batch(self, batch, sync: bool = True) -> float:
        inputs, targets = self._stack_batch(batch)
        self.model.zero_grad()
        predictions = self.model.forward(inputs)
        loss_value = self.loss.forward(predictions, targets)
        self.model.backward(self.loss.backward())
        if self.comm is not None and sync:
            sync_gradients(self.model, self.comm, average=True)
        self.optimizer.step()
        if self.scheduler is not None:
            self.scheduler.step()
        if self.config.batch_compute_delay > 0:
            import time as _time

            _time.sleep(self.config.batch_compute_delay)
        return float(loss_value)

    def _collective_continue(self, have_data: bool) -> bool:
        """Agree across ranks whether training continues this step."""
        if self.comm is None or self.comm.size == 1:
            return have_data
        flag = self.comm.allreduce(np.asarray(1 if have_data else 0), op="min")
        return bool(int(flag) == 1)

    # ------------------------------------------------------------------- run
    def run(self) -> TrainingMetrics:
        """Run the training loop until the buffer is exhausted (or max_batches)."""
        start = self._clock.now()
        if self.comm is not None and self.comm.size > 1:
            broadcast_parameters(self.model, self.comm, root=0)

        batch_index = 0
        while True:
            if self.config.max_batches is not None and batch_index >= self.config.max_batches:
                # Still participate in one last collective so peers don't hang.
                self._collective_continue(False)
                break
            batch = self.buffer.get_batch_columns(
                self.config.batch_size, timeout=self.config.get_timeout
            )
            # Open the throughput window once data is available but before the
            # first batch is trained: the first measurement then covers
            # `window` full batch intervals, excluding the initial buffer
            # threshold-fill wait (previously the window only opened at the
            # *completion* of the first batch, overestimating the first
            # Figure-2 point by ~1/window).  No-op after the first batch.
            self.metrics.throughput.start()
            keep_going = self._collective_continue(len(batch) > 0)
            if not batch:
                break
            # A rank can hold a final (possibly partial) batch while the
            # collective already agreed to stop (another rank ran dry).  Those
            # samples were consumed from the buffer, so train on them rather
            # than discarding them — without the gradient collective, because
            # ranks that agreed to stop with no data will not participate.
            loss_value = self._train_batch(batch, sync=keep_going)
            batch_index += 1
            self.metrics.batches_trained = batch_index
            self.metrics.samples_trained += len(batch)
            self.metrics.losses.record_train(
                batch_index, self._global_samples(batch_index), loss_value
            )
            self.metrics.throughput.record_batch(len(batch))

            if self.config.track_occurrences:
                self.occurrences.record_columns(batch.source_ids, batch.time_steps)
            if self.config.record_population:
                snapshot = self.buffer.snapshot()
                self.metrics.buffer_population.record(
                    self._clock.now() - start,
                    snapshot["size"],
                    snapshot.get("num_unseen"),
                )
            if self.on_batch is not None:
                self.on_batch(batch_index, loss_value)

            if (
                self.validator is not None
                and self.config.validation_interval > 0
                and batch_index % self.config.validation_interval == 0
                and self.rank == 0
            ):
                val_loss = self.validator.evaluate(self.model)
                self.metrics.losses.record_validation(
                    batch_index, self._global_samples(batch_index), val_loss
                )

            if (
                self.checkpointer is not None
                and self.checkpointer.should_checkpoint(batch_index)
            ):
                self.checkpointer.save(
                    self.model,
                    self.optimizer,
                    batches_trained=batch_index,
                    samples_trained=self.metrics.samples_trained,
                )

            if not keep_going:
                break

        # Final validation so every run reports an end-of-training MSE.
        if self.validator is not None and self.rank == 0:
            val_loss = self.validator.evaluate(self.model)
            self.metrics.losses.record_validation(
                batch_index, self._global_samples(batch_index), val_loss
            )

        self.metrics.occurrence_histogram = self.occurrences.histogram()
        self.metrics.wall_time = self._clock.now() - start
        return self.metrics

    def _global_samples(self, batch_index: int) -> int:
        """Simulation time steps seen across all ranks after ``batch_index`` batches.

        Matches the paper's x-axis of Figure 5: ``n_s = n_b * b * n_GPU``.
        """
        world = self.comm.size if self.comm is not None else 1
        return batch_index * self.config.batch_size * world
