"""Server side of the framework: data aggregation, buffering and parallel training.

Each server rank (one per GPU in the paper) runs two threads:

* the **data-aggregator thread** (:class:`DataAggregator`) receives time steps
  from the clients, deduplicates restarted clients' messages and stores
  samples into the rank-local training buffer;
* the **training thread** (:class:`TrainingWorker`) extracts batches from the
  buffer, performs forward/backward passes and synchronises gradients with the
  other ranks (synchronous data-parallel training).

:class:`TrainingServer` wires both together over the transport router and
exposes a single blocking :meth:`TrainingServer.run`.  The tcp front door
(:class:`AsyncFrontDoor`) accepts remote clients and feeds the same
aggregators over sockets.

The package exports lazily (PEP 562): ``repro.server.serving`` must stay
importable from the transport layer without pulling the training stack —
whose modules import ``repro.core``, which imports the study driver, which
imports this package back — into an import cycle.
"""

from importlib import import_module

_EXPORTS = {
    "DataAggregator": "repro.server.aggregator",
    "AggregatorStats": "repro.server.aggregator",
    "MessageLog": "repro.server.fault",
    "HeartbeatMonitor": "repro.server.fault",
    "TrainingWorker": "repro.server.trainer",
    "TrainerConfig": "repro.server.trainer",
    "TrainingServer": "repro.server.server",
    "ServerConfig": "repro.server.server",
    "ServerResult": "repro.server.server",
    "Validator": "repro.server.validation",
    "ValidationSet": "repro.server.validation",
    "ServerCheckpointer": "repro.server.checkpointing",
    "sync_gradients": "repro.server.ddp",
    "broadcast_parameters": "repro.server.ddp",
    "AsyncFrontDoor": "repro.server.serving",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each export once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
