"""Server side of the framework: data aggregation, buffering and parallel training.

Each server rank (one per GPU in the paper) runs two threads:

* the **data-aggregator thread** (:class:`DataAggregator`) receives time steps
  from the clients, deduplicates restarted clients' messages and stores
  samples into the rank-local training buffer;
* the **training thread** (:class:`TrainingWorker`) extracts batches from the
  buffer, performs forward/backward passes and synchronises gradients with the
  other ranks (synchronous data-parallel training).

:class:`TrainingServer` wires both together over the transport router and
exposes a single blocking :meth:`TrainingServer.run`.
"""

from repro.server.aggregator import AggregatorStats, DataAggregator
from repro.server.checkpointing import ServerCheckpointer
from repro.server.ddp import broadcast_parameters, sync_gradients
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.server.server import ServerConfig, ServerResult, TrainingServer
from repro.server.trainer import TrainerConfig, TrainingWorker
from repro.server.validation import ValidationSet, Validator

__all__ = [
    "DataAggregator",
    "AggregatorStats",
    "MessageLog",
    "HeartbeatMonitor",
    "TrainingWorker",
    "TrainerConfig",
    "TrainingServer",
    "ServerConfig",
    "ServerResult",
    "Validator",
    "ValidationSet",
    "ServerCheckpointer",
    "sync_gradients",
    "broadcast_parameters",
]
