"""Synchronous data-parallel training primitives (the paper's DDP substitute).

The paper uses PyTorch Distributed: every server process holds an identical
copy of the network, trains it on different data and all-reduces the gradient
after every batch.  The two functions here implement exactly that over the
thread communicator: :func:`broadcast_parameters` makes the replicas identical
at start-up (and after a checkpoint restore), :func:`sync_gradients` averages
the gradients with a ring all-reduce.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.parallel.collectives import ring_allreduce, tree_broadcast
from repro.parallel.communicator import ThreadCommunicator

Array = np.ndarray


def broadcast_parameters(model: Module, comm: ThreadCommunicator, root: int = 0) -> None:
    """Copy the parameters of rank ``root``'s replica into every other replica."""
    if comm.size == 1:
        return
    for _, param in model.named_parameters():
        value = tree_broadcast(comm, param.data if comm.rank == root else None, root=root)
        if comm.rank != root:
            param.data[...] = np.asarray(value, dtype=param.data.dtype)


def sync_gradients(model: Module, comm: ThreadCommunicator, average: bool = True) -> None:
    """All-reduce (average) the gradients of every parameter across ranks.

    Gradients are flattened into a single vector so one ring all-reduce per
    batch suffices, which is also how production frameworks bucket gradients.
    """
    if comm.size == 1:
        return
    flat = model.flat_gradients()
    reduced = ring_allreduce(comm, flat, average=average)
    model.set_flat_gradients(reduced.astype(flat.dtype, copy=False))


def parameters_in_sync(model: Module, comm: ThreadCommunicator, atol: float = 1e-6) -> bool:
    """Check that every rank holds (numerically) identical parameters.

    Used by tests and by the fault-tolerance logic after a checkpoint restore.
    """
    if comm.size == 1:
        return True
    flat = np.concatenate([p.data.ravel() for p in model.parameters()])
    mean = ring_allreduce(comm, flat, average=True)
    return bool(np.allclose(flat, mean, atol=atol))
