"""Fault-tolerance primitives of the server.

The paper's protocol: "The server maintains a log of received messages per
client, so in case of client restart, already received messages are discarded"
and "the server watches for unresponsive clients and asks the launcher to
properly kill and restart faulty ones".  :class:`MessageLog` implements the
former, :class:`HeartbeatMonitor` the latter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np


class MessageLog:
    """Per-client log of received (client_id, time_step) keys for deduplication."""

    def __init__(self) -> None:
        self._received: Dict[int, Set[int]] = {}
        self._duplicates = 0
        self._lock = threading.Lock()

    def register(self, client_id: int, time_step: int) -> bool:
        """Record a message; returns True if it is new, False if duplicate."""
        with self._lock:
            steps = self._received.setdefault(int(client_id), set())
            if time_step in steps:
                self._duplicates += 1
                return False
            steps.add(int(time_step))
            return True

    def register_many(self, client_ids: np.ndarray,
                      time_steps: np.ndarray) -> Optional[np.ndarray]:
        """Record a columnar batch of ``(client_id, time_step)`` keys at once.

        Returns ``None`` when every key is new (the caller keeps the whole
        batch, no mask allocation), else a boolean keep-mask aligned with the
        input vectors.  Duplicate accounting matches per-key
        :meth:`register` exactly: each rejected key counts once.
        """
        ids = client_ids.tolist()
        steps = time_steps.tolist()
        with self._lock:
            if ids and len(set(ids)) == 1:
                # Single-client chunk (the overwhelmingly common shape of a
                # transport batch): one set-disjointness probe decides the
                # whole batch instead of a per-key membership loop.
                known = self._received.setdefault(int(ids[0]), set())
                if len(set(steps)) == len(steps) and known.isdisjoint(steps):
                    known.update(steps)
                    return None
            keep = np.empty(len(ids), dtype=bool)
            for index, (cid, step) in enumerate(zip(ids, steps)):
                known = self._received.setdefault(int(cid), set())
                if step in known:
                    self._duplicates += 1
                    keep[index] = False
                else:
                    known.add(int(step))
                    keep[index] = True
            return keep

    def received_steps(self, client_id: int) -> Set[int]:
        """Time steps already received from ``client_id`` (copy)."""
        with self._lock:
            return set(self._received.get(int(client_id), set()))

    def count(self, client_id: int) -> int:
        with self._lock:
            return len(self._received.get(int(client_id), set()))

    @property
    def duplicates_discarded(self) -> int:
        with self._lock:
            return self._duplicates

    def state(self) -> Dict[int, List[int]]:
        """Serialisable snapshot (used by server checkpoints)."""
        with self._lock:
            return {cid: sorted(steps) for cid, steps in self._received.items()}

    def restore(self, state: Dict[int, List[int]]) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        with self._lock:
            self._received = {int(cid): set(steps) for cid, steps in state.items()}


@dataclass
class ClientLiveness:
    """Liveness record of one client."""

    client_id: int
    last_seen: float
    progress: float = 0.0
    finished: bool = False


@dataclass
class HeartbeatMonitor:
    """Detects unresponsive clients from the timestamps of their last messages.

    Any message (hello, time step, heartbeat) refreshes the client's
    ``last_seen``; clients silent for more than ``timeout`` seconds and not
    finished are reported by :meth:`unresponsive_clients` so the server can ask
    the launcher to kill and restart them.
    """

    timeout: float = 30.0
    _clients: Dict[int, ClientLiveness] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def touch(self, client_id: int, progress: float = 0.0, timestamp: float | None = None) -> None:
        """Record activity from a client."""
        now = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            record = self._clients.get(client_id)
            if record is None:
                self._clients[client_id] = ClientLiveness(client_id, now, progress)
            else:
                record.last_seen = now
                record.progress = max(record.progress, progress)

    def mark_finished(self, client_id: int) -> None:
        with self._lock:
            record = self._clients.setdefault(
                client_id, ClientLiveness(client_id, time.monotonic())
            )
            record.finished = True

    def silence(self, client_id: int, now: float | None = None) -> float | None:
        """Seconds since ``client_id``'s last observed activity.

        ``None`` when the client was never seen (it may still be starting
        up) or has already finished; the launcher's watchdog asks
        :meth:`is_finished` to tell the two apart.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            record = self._clients.get(client_id)
            if record is None or record.finished:
                return None
            return now - record.last_seen

    def is_finished(self, client_id: int) -> bool:
        """True once the client's ``ClientFinished`` was observed."""
        with self._lock:
            record = self._clients.get(client_id)
            return record is not None and record.finished

    def unresponsive_clients(self, now: float | None = None) -> List[Tuple[int, float]]:
        """(client_id, silence duration) of clients exceeding the timeout."""
        now = time.monotonic() if now is None else now
        with self._lock:
            return [
                (cid, now - rec.last_seen)
                for cid, rec in self._clients.items()
                if not rec.finished and (now - rec.last_seen) > self.timeout
            ]

    def tracked_clients(self) -> List[int]:
        with self._lock:
            return sorted(self._clients)
