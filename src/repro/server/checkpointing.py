"""Periodic server checkpointing (fault tolerance of the training server).

The paper: "The server is regularly checkpointed.  If a server failure is
detected by the launcher, it first kills all running clients and next restarts
a new server instance from the last checkpoint."  The checkpoint captures the
model, the optimizer state, the message log (so restarted clients'
already-received messages stay deduplicated) and training progress counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.server.fault import MessageLog
from repro.utils.exceptions import CheckpointError


@dataclass
class ServerCheckpointer:
    """Writes and restores server checkpoints at a fixed batch interval.

    Parameters
    ----------
    directory:
        Where checkpoints are written.  Two files are produced per rank: the
        ``.npz`` model/optimizer archive and a ``.json`` sidecar holding the
        message-log snapshot and the progress counters.
    interval_batches:
        Checkpoint every that many trained batches (0 disables periodic saves;
        explicit :meth:`save` calls still work).
    rank:
        Server rank owning this checkpointer.
    keep_last:
        Number of checkpoint generations retained on disk.
    """

    directory: Path
    interval_batches: int = 200
    rank: int = 0
    keep_last: int = 2
    _saved_generations: list = field(default_factory=list)
    _generation_counter: int = 0

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- helpers
    def _base_name(self, generation: int) -> str:
        return f"server-rank{self.rank}-gen{generation:06d}"

    def should_checkpoint(self, batches_trained: int) -> bool:
        """True when the periodic interval has been reached."""
        return (
            self.interval_batches > 0
            and batches_trained > 0
            and batches_trained % self.interval_batches == 0
        )

    # ------------------------------------------------------------------- save
    def save(
        self,
        model: Module,
        optimizer: Optional[Optimizer],
        batches_trained: int,
        samples_trained: int,
        message_log: Optional[MessageLog] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write one checkpoint generation and prune old ones."""
        generation = self._generation_counter
        self._generation_counter += 1
        base = self._base_name(generation)
        archive_path = self.directory / f"{base}.npz"
        sidecar_path = self.directory / f"{base}.json"

        metadata = {
            "rank": self.rank,
            "generation": generation,
            "batches_trained": int(batches_trained),
            "samples_trained": int(samples_trained),
        }
        if extra:
            metadata.update(extra)
        save_checkpoint(archive_path, model, optimizer, metadata=metadata)

        sidecar = {
            "metadata": metadata,
            "message_log": message_log.state() if message_log is not None else {},
        }
        sidecar_path.write_text(json.dumps(sidecar))
        self._saved_generations.append(base)
        self._prune()
        return archive_path

    def _prune(self) -> None:
        while len(self._saved_generations) > self.keep_last:
            base = self._saved_generations.pop(0)
            for suffix in (".npz", ".json"):
                path = self.directory / f"{base}{suffix}"
                if path.exists():
                    path.unlink()

    # ---------------------------------------------------------------- restore
    def latest(self) -> Optional[str]:
        """Base name of the most recent checkpoint on disk (None when empty)."""
        candidates = sorted(self.directory.glob(f"server-rank{self.rank}-gen*.npz"))
        if not candidates:
            return None
        return candidates[-1].stem

    def restore(
        self,
        model: Module,
        optimizer: Optional[Optimizer] = None,
        message_log: Optional[MessageLog] = None,
    ) -> Dict[str, Any]:
        """Restore the latest checkpoint; returns its metadata.

        Raises :class:`CheckpointError` when no checkpoint exists.
        """
        base = self.latest()
        if base is None:
            raise CheckpointError(f"no checkpoint found in {self.directory} for rank {self.rank}")
        metadata = load_checkpoint(self.directory / f"{base}.npz", model, optimizer)
        sidecar_path = self.directory / f"{base}.json"
        if sidecar_path.exists() and message_log is not None:
            sidecar = json.loads(sidecar_path.read_text())
            message_log.restore(
                {int(k): v for k, v in sidecar.get("message_log", {}).items()}
            )
        return metadata
