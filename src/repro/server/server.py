"""The training server: aggregator threads + data-parallel training workers.

A :class:`TrainingServer` owns one training buffer, one data-aggregator thread
and one training worker per server rank ("per GPU").  ``run`` blocks until the
training terminates (all clients finished and buffers drained, or the batch
budget is reached) and returns a :class:`ServerResult` with the trained model
and every recorded metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.buffers import make_buffer
from repro.buffers.base import TrainingBuffer
from repro.core.metrics import TrainingMetrics, merge_worker_metrics, throughput_from_summary
from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.nn.schedulers import LRScheduler, StepLR
from repro.parallel.communicator import ThreadCommunicator
from repro.parallel.spmd import SPMDExecutor
from repro.parallel.transport import Transport
from repro.server.aggregator import DataAggregator
from repro.server.checkpointing import ServerCheckpointer
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.server.trainer import TrainerConfig, TrainingWorker
from repro.server.validation import ValidationSet, Validator


@dataclass
class ServerConfig:
    """Configuration of the training server.

    Attributes
    ----------
    num_ranks:
        Number of server ranks; the paper maps one rank to one GPU.
    buffer_kind:
        "fifo", "firo" or "reservoir".
    buffer_capacity, buffer_threshold:
        Per-rank buffer parameters (the paper uses 6 000 / 1 000 at full scale).
    expected_clients:
        Number of ensemble members whose completion ends data reception.
        ``0`` is a valid (idle) configuration: a shard of the sharded
        serving tier to which the hash ring assigned no clients completes
        reception immediately and drains an empty buffer.
    learning_rate:
        Initial learning rate of Adam (paper: 1e-3).
    lr_step_batches:
        Halve the learning rate every that many *batches per rank*; the paper
        scales this with the number of GPUs so the schedule follows the number
        of samples seen.
    lr_min:
        Floor of the learning-rate schedule (paper: 2.5e-4).
    seed:
        Seed shared by every replica so their initial weights are identical.
    checkpoint_dir / checkpoint_interval:
        Enable periodic server checkpointing when set.
    """

    num_ranks: int = 1
    buffer_kind: str = "reservoir"
    buffer_capacity: int = 6_000
    buffer_threshold: int = 1_000
    expected_clients: int = 1
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    learning_rate: float = 1e-3
    lr_step_batches: int = 1_000
    lr_gamma: float = 0.5
    lr_min: float = 2.5e-4
    seed: int = 0
    poll_timeout: float = 0.02
    heartbeat_timeout: float = 30.0
    checkpoint_dir: Optional[Path] = None
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if self.expected_clients < 0:
            raise ValueError("expected_clients must be non-negative")


@dataclass
class ServerResult:
    """Everything produced by one server run."""

    model: Module
    per_rank_metrics: List[TrainingMetrics]
    aggregator_stats: List[object]
    buffer_snapshots: List[dict]
    transport_stats: object
    summary: Dict[str, float]
    duplicates_discarded: int = 0

    @property
    def metrics(self) -> TrainingMetrics:
        """Rank-0 metrics (losses are identical across ranks after all-reduce)."""
        return self.per_rank_metrics[0]

    @property
    def best_validation_loss(self) -> float:
        return self.metrics.losses.best_validation_loss

    @property
    def total_throughput(self) -> float:
        """Samples/second summed across all server ranks."""
        return throughput_from_summary(self.summary)

    @property
    def unresponsive_kills(self) -> int:
        """Clients the launcher killed for missing their heartbeat deadline."""
        return int(getattr(self.transport_stats, "unresponsive_kills", 0))


class TrainingServer:
    """Drives aggregation and data-parallel training for one online study."""

    def __init__(
        self,
        config: ServerConfig,
        model_factory: Callable[[], Module],
        router: Transport,
        validation: Optional[ValidationSet] = None,
        loss_factory: Callable[[], Loss] = MSELoss,
        optimizer_factory: Optional[Callable[[Module], Optimizer]] = None,
        scheduler_factory: Optional[Callable[[Optimizer], LRScheduler]] = None,
    ) -> None:
        self.config = config
        self.model_factory = model_factory
        self.router = router
        self.validation = validation
        self.loss_factory = loss_factory
        self.optimizer_factory = optimizer_factory
        self.scheduler_factory = scheduler_factory

        self.heartbeat_monitor = HeartbeatMonitor(timeout=config.heartbeat_timeout)
        self.buffers: List[TrainingBuffer] = [
            make_buffer(
                config.buffer_kind,
                capacity=config.buffer_capacity,
                threshold=config.buffer_threshold,
                seed=config.seed + rank,
            )
            for rank in range(config.num_ranks)
        ]
        self.message_logs = [MessageLog() for _ in range(config.num_ranks)]
        self.aggregators = [
            DataAggregator(
                rank=rank,
                router=router,
                buffer=self.buffers[rank],
                expected_clients=config.expected_clients,
                poll_timeout=config.poll_timeout,
                heartbeat_monitor=self.heartbeat_monitor,
                message_log=self.message_logs[rank],
            )
            for rank in range(config.num_ranks)
        ]

    # -------------------------------------------------------------- factories
    def _build_optimizer(self, model: Module) -> Optimizer:
        if self.optimizer_factory is not None:
            return self.optimizer_factory(model)
        return Adam(model.parameters(), lr=self.config.learning_rate)

    def _build_scheduler(self, optimizer: Optimizer) -> Optional[LRScheduler]:
        if self.scheduler_factory is not None:
            return self.scheduler_factory(optimizer)
        if self.config.lr_step_batches <= 0:
            return None
        return StepLR(
            optimizer,
            step_size=self.config.lr_step_batches,
            gamma=self.config.lr_gamma,
            min_lr=self.config.lr_min,
        )

    def _build_worker(self, comm: ThreadCommunicator) -> TrainingWorker:
        rank = comm.rank
        model = self.model_factory()
        optimizer = self._build_optimizer(model)
        scheduler = self._build_scheduler(optimizer)
        validator = Validator(self.validation) if self.validation is not None else None
        checkpointer = None
        if self.config.checkpoint_dir is not None and self.config.checkpoint_interval > 0:
            checkpointer = ServerCheckpointer(
                directory=Path(self.config.checkpoint_dir),
                interval_batches=self.config.checkpoint_interval,
                rank=rank,
            )
        trainer_config = self.config.trainer
        return TrainingWorker(
            rank=rank,
            model=model,
            optimizer=optimizer,
            buffer=self.buffers[rank],
            config=trainer_config,
            loss=self.loss_factory(),
            scheduler=scheduler,
            validator=validator,
            comm=comm if comm.size > 1 else None,
            checkpointer=checkpointer,
        )

    # -------------------------------------------------------------------- run
    def run(self) -> ServerResult:
        """Start aggregators and training workers; block until training ends."""
        for aggregator in self.aggregators:
            aggregator.start()

        workers: List[Optional[TrainingWorker]] = [None] * self.config.num_ranks

        def rank_main(comm: ThreadCommunicator) -> TrainingMetrics:
            worker = self._build_worker(comm)
            workers[comm.rank] = worker
            return worker.run()

        try:
            executor = SPMDExecutor(self.config.num_ranks, timeout=None)
            per_rank = executor.run(rank_main).values
        finally:
            for buffer in self.buffers:
                buffer.close()
            for aggregator in self.aggregators:
                aggregator.stop()

        rank0_worker = workers[0]
        assert rank0_worker is not None
        summary = merge_worker_metrics(per_rank)
        duplicates = sum(log.duplicates_discarded for log in self.message_logs)
        return ServerResult(
            model=rank0_worker.model,
            per_rank_metrics=per_rank,
            aggregator_stats=[agg.stats for agg in self.aggregators],
            buffer_snapshots=[buffer.snapshot() for buffer in self.buffers],
            transport_stats=self.router.stats,
            summary=summary,
            duplicates_discarded=duplicates,
        )
