"""Cost models used by the pipeline simulator.

All models are deliberately simple first-order throughput models whose default
constants are calibrated against the figures the paper reports (Table 1 and
Table 2): a 20-core solver instance produces one 1000x1000 time step every
~0.8 s, a V100 trains ~120-150 samples/s at batch size 10 on the 514M-parameter
MLP, the parallel file system reads ~40 MB/s per data-loader worker stream for
this access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SolverCostModel:
    """Time for one client to produce one time step.

    ``seconds_per_cell_per_core`` is the per-time-step cost normalised by grid
    cells and cores, so scaling the grid or the per-client core count rescales
    the production rate accordingly.
    """

    seconds_per_cell_per_core: float = 1.6e-5
    startup_seconds: float = 2.0

    def step_seconds(self, grid_cells: int, cores_per_client: int) -> float:
        if grid_cells <= 0 or cores_per_client <= 0:
            raise ValueError("grid_cells and cores_per_client must be positive")
        return self.seconds_per_cell_per_core * grid_cells / cores_per_client

    def simulation_seconds(self, grid_cells: int, cores_per_client: int, num_steps: int) -> float:
        return self.startup_seconds + num_steps * self.step_seconds(grid_cells, cores_per_client)


@dataclass(frozen=True)
class TrainingCostModel:
    """Time for one GPU to process one training batch.

    The cost is linear in the number of model parameters and in the batch
    size, plus a fixed per-batch overhead (kernel launches, all-reduce).
    """

    seconds_per_parameter_per_sample: float = 1.1e-11
    per_batch_overhead: float = 0.01
    allreduce_overhead_per_rank: float = 0.002

    def batch_seconds(self, num_parameters: int, batch_size: int, num_ranks: int = 1) -> float:
        if num_parameters <= 0 or batch_size <= 0 or num_ranks <= 0:
            raise ValueError("num_parameters, batch_size and num_ranks must be positive")
        compute = self.seconds_per_parameter_per_sample * num_parameters * batch_size
        sync = self.allreduce_overhead_per_rank * (num_ranks - 1)
        return compute + self.per_batch_overhead + sync

    def samples_per_second(self, num_parameters: int, batch_size: int, num_ranks: int = 1) -> float:
        return batch_size / self.batch_seconds(num_parameters, batch_size, num_ranks)


@dataclass(frozen=True)
class IOCostModel:
    """Parallel file-system model for the offline baseline.

    ``read_bandwidth_bytes_per_s`` is the effective per-stream bandwidth of the
    mmap-based random time-step reads (small, scattered 4 MB accesses), not the
    file system's peak streaming bandwidth.  The default is calibrated so the
    paper's offline baseline (8 loader streams per GPU, 4 GPUs, 4 MB samples)
    lands near its reported ~38 samples/s.
    """

    read_bandwidth_bytes_per_s: float = 5.0e6
    write_bandwidth_bytes_per_s: float = 2.0e8
    per_file_overhead_seconds: float = 5e-3
    streams: int = 8

    def read_seconds(self, nbytes: int, num_files: int = 1) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bandwidth = self.read_bandwidth_bytes_per_s * max(self.streams, 1)
        return nbytes / bandwidth + num_files * self.per_file_overhead_seconds

    def write_seconds(self, nbytes: int, num_files: int = 1) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.write_bandwidth_bytes_per_s + num_files * self.per_file_overhead_seconds


@dataclass(frozen=True)
class ClusterCostModel:
    """Euro cost of the resources, matching the paper's consolidated figures.

    1 000 core-hours = 6 EUR, 1 000 GPU(V100)-hours = 360 EUR,
    1 TB of SSD storage = 56 EUR.
    """

    euros_per_core_hour: float = 6.0 / 1000.0
    euros_per_gpu_hour: float = 360.0 / 1000.0
    euros_per_terabyte: float = 56.0

    def compute_cost(self, core_hours: float, gpu_hours: float) -> float:
        return core_hours * self.euros_per_core_hour + gpu_hours * self.euros_per_gpu_hour

    def storage_cost(self, terabytes: float) -> float:
        return terabytes * self.euros_per_terabyte
