"""Discrete-time simulator of the online pipeline and analytic offline estimate.

The online simulator advances a virtual clock in small ticks.  At every tick:

* running clients produce time steps at the rate given by the solver cost
  model (clients are organised in series, as the launcher submits them);
* produced samples are pushed to the per-rank buffer replica (round-robin);
* each GPU rank consumes batches at the rate given by the training cost model,
  subject to the buffer policy: FIFO/FIRO can only deliver samples once
  (consumption is production-limited), the Reservoir can re-deliver seen
  samples and is therefore GPU-limited once the threshold is passed.

This is intentionally a *model* — the real threaded implementation lives in
:mod:`repro.server` / :mod:`repro.client` — but it captures the resource
balance that the paper's Figure 2 and Table 2 describe and lets the benchmarks
extrapolate to the paper's 20 000-simulation, 8 TB configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.simulation.costs import IOCostModel, SolverCostModel, TrainingCostModel


@dataclass
class OnlinePipelineEstimate:
    """Result of one online pipeline simulation."""

    total_seconds: float
    samples_produced: int
    samples_consumed: int
    batches_trained: int
    mean_throughput: float
    gpu_busy_fraction: float
    times: np.ndarray
    throughput_series: np.ndarray
    buffer_population: np.ndarray

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0


@dataclass
class OfflinePipelineEstimate:
    """Analytic estimate of the offline (file-based) baseline."""

    generation_seconds: float
    training_seconds: float
    io_limited: bool
    samples_per_second: float
    dataset_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.generation_seconds + self.training_seconds

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0


@dataclass
class PipelineSimulator:
    """Tick-based simulation of the streamed-training pipeline.

    Parameters describe the study (ensemble size, series, per-client resources,
    grid size, model size, buffer policy) and the cost models supply the rates.
    """

    num_simulations: int
    steps_per_simulation: int
    grid_cells: int
    cores_per_client: int
    concurrent_clients: int
    num_gpus: int
    model_parameters: int
    batch_size: int = 10
    buffer_kind: str = "reservoir"
    buffer_capacity: int = 6_000
    buffer_threshold: int = 1_000
    series_sizes: Optional[Sequence[int]] = None
    inter_series_delay: float = 30.0
    solver_cost: SolverCostModel = field(default_factory=SolverCostModel)
    training_cost: TrainingCostModel = field(default_factory=TrainingCostModel)
    tick: float = 1.0
    max_seconds: float = 2_000_000.0

    # ------------------------------------------------------------------ setup
    def _series(self) -> List[int]:
        if self.series_sizes:
            series = list(self.series_sizes)
            covered = sum(series)
            if covered < self.num_simulations:
                series.append(self.num_simulations - covered)
            return series
        # Default: fill series of `concurrent_clients` simulations.
        series = []
        remaining = self.num_simulations
        while remaining > 0:
            series.append(min(self.concurrent_clients, remaining))
            remaining -= series[-1]
        return series

    # -------------------------------------------------------------------- run
    def run(self) -> OnlinePipelineEstimate:
        """Simulate the pipeline until all data is produced and consumed."""
        step_seconds = self.solver_cost.step_seconds(self.grid_cells, self.cores_per_client)
        production_rate_per_client = 1.0 / step_seconds  # samples / second
        batch_seconds = self.training_cost.batch_seconds(
            self.model_parameters, self.batch_size, self.num_gpus
        )
        per_gpu_batch_rate = 1.0 / batch_seconds

        series = self._series()
        total_unique = self.num_simulations * self.steps_per_simulation
        buffer_capacity_total = self.buffer_capacity * self.num_gpus
        threshold_total = self.buffer_threshold * self.num_gpus

        clock = 0.0
        produced = 0.0
        consumed_unique = 0.0
        consumed_total = 0.0
        batches = 0.0
        gpu_busy = 0.0

        # Buffer state: unseen samples (never consumed) and, for the Reservoir,
        # seen samples retained for re-reads.
        unseen = 0.0
        seen = 0.0

        series_index = 0
        series_remaining = series[0] * self.steps_per_simulation
        series_delay_left = 0.0
        times: List[float] = []
        throughput_series: List[float] = []
        population: List[float] = []

        reservoir = self.buffer_kind.lower() == "reservoir"

        while clock < self.max_seconds:
            tick = self.tick
            # ---------------------------------------------------- production
            producing = series_index < len(series) and series_delay_left <= 0.0
            if producing:
                active_clients = min(series[series_index], self.concurrent_clients)
                produced_now = min(
                    active_clients * production_rate_per_client * tick, series_remaining
                )
                # Back-pressure: FIFO/FIRO stop producing when full; Reservoir
                # only blocks when full of unseen samples.
                free_space = buffer_capacity_total - (unseen + (seen if not reservoir else 0.0))
                if reservoir:
                    free_space = buffer_capacity_total - unseen
                produced_now = max(0.0, min(produced_now, free_space))
                unseen += produced_now
                if reservoir:
                    # Seen samples are evicted to make room for new ones.
                    overflow = max(0.0, unseen + seen - buffer_capacity_total)
                    seen = max(0.0, seen - overflow)
                produced += produced_now
                series_remaining -= produced_now
                if series_remaining <= 1e-9:
                    series_index += 1
                    if series_index < len(series):
                        series_delay_left = self.inter_series_delay
                        series_remaining = series[series_index] * self.steps_per_simulation
            elif series_index < len(series):
                series_delay_left -= tick

            reception_over = produced >= total_unique - 1e-9 and series_index >= len(series)

            # --------------------------------------------------- consumption
            population_now = unseen + seen
            can_train = population_now > 0 and (
                reception_over or population_now > threshold_total
            )
            consumed_now = 0.0
            if can_train:
                gpu_capacity = self.num_gpus * per_gpu_batch_rate * self.batch_size * tick
                if reservoir:
                    # GPU-limited: re-reads fill any gap left by fresh data.
                    consumed_now = gpu_capacity
                    fresh = min(unseen, consumed_now)
                    unseen -= fresh
                    seen += fresh
                    if reception_over:
                        # Drain mode: consumed samples leave the buffer.
                        drained = min(seen, consumed_now)
                        seen -= drained
                    consumed_unique += fresh
                else:
                    # FIFO/FIRO: each sample is consumed exactly once.
                    consumed_now = min(gpu_capacity, unseen)
                    unseen -= consumed_now
                    consumed_unique += consumed_now
                consumed_total += consumed_now
                batches += consumed_now / self.batch_size
                gpu_busy += tick * min(1.0, consumed_now / max(gpu_capacity, 1e-12))

            times.append(clock)
            throughput_series.append(consumed_now / tick)
            population.append(unseen + seen)

            clock += tick
            if reception_over:
                if reservoir and (unseen + seen) <= 1e-9:
                    break
                if not reservoir and unseen <= 1e-9:
                    break

        mean_throughput = consumed_total / clock if clock > 0 else 0.0
        return OnlinePipelineEstimate(
            total_seconds=clock,
            samples_produced=int(round(produced)),
            samples_consumed=int(round(consumed_total)),
            batches_trained=int(round(batches)),
            mean_throughput=mean_throughput,
            gpu_busy_fraction=gpu_busy / clock if clock > 0 else 0.0,
            times=np.asarray(times),
            throughput_series=np.asarray(throughput_series),
            buffer_population=np.asarray(population),
        )


def simulate_offline_pipeline(
    num_simulations: int,
    steps_per_simulation: int,
    grid_cells: int,
    cores_per_client: int,
    concurrent_clients: int,
    num_gpus: int,
    model_parameters: int,
    num_epochs: int,
    batch_size: int = 10,
    bytes_per_sample: Optional[int] = None,
    solver_cost: SolverCostModel | None = None,
    training_cost: TrainingCostModel | None = None,
    io_cost: IOCostModel | None = None,
) -> OfflinePipelineEstimate:
    """Analytic estimate of the offline baseline (generation + multi-epoch training).

    Training throughput is the minimum of the GPU compute rate and the file
    system read rate — the offline baseline of the paper is I/O bound, which is
    what caps it at ~38 samples/s on 4 GPUs.
    """
    solver_cost = solver_cost or SolverCostModel()
    training_cost = training_cost or TrainingCostModel()
    io_cost = io_cost or IOCostModel()
    bytes_per_sample = bytes_per_sample or grid_cells * 4

    total_samples = num_simulations * steps_per_simulation
    dataset_bytes = total_samples * bytes_per_sample

    # Generation: the ensemble runs with `concurrent_clients` simultaneous
    # simulations, then everything is written once to disk.
    sim_seconds = solver_cost.simulation_seconds(grid_cells, cores_per_client, steps_per_simulation)
    waves = int(np.ceil(num_simulations / max(concurrent_clients, 1)))
    generation_seconds = waves * sim_seconds + io_cost.write_seconds(dataset_bytes, num_simulations)

    # Training: per-epoch cost limited by min(GPU rate, read rate).
    gpu_rate = num_gpus * training_cost.samples_per_second(model_parameters, batch_size, num_gpus)
    read_rate = (
        io_cost.read_bandwidth_bytes_per_s * io_cost.streams * num_gpus / bytes_per_sample
    )
    effective_rate = min(gpu_rate, read_rate)
    training_seconds = num_epochs * total_samples / effective_rate

    return OfflinePipelineEstimate(
        generation_seconds=generation_seconds,
        training_seconds=training_seconds,
        io_limited=read_rate < gpu_rate,
        samples_per_second=effective_rate,
        dataset_bytes=dataset_bytes,
    )
