"""Discrete-event performance model of the online/offline training pipelines.

The paper's headline experiment (Table 2) runs 20 000 simulations on 5 120
cores and streams 8 TB into 4 GPUs — far beyond a single node.  This package
models the pipeline analytically/event-by-event (production rate of the client
ensemble, buffer policy, GPU batch rate, file-system bandwidth for the offline
baseline) so the full-scale numbers can be extrapolated and the *shape* of the
paper's result (online ≈ 13x batch throughput, offline dominated by I/O and
storage) can be reproduced without the hardware.
"""

from repro.simulation.costs import ClusterCostModel, IOCostModel, SolverCostModel, TrainingCostModel
from repro.simulation.pipeline import (
    OfflinePipelineEstimate,
    OnlinePipelineEstimate,
    PipelineSimulator,
    simulate_offline_pipeline,
)

__all__ = [
    "SolverCostModel",
    "TrainingCostModel",
    "IOCostModel",
    "ClusterCostModel",
    "PipelineSimulator",
    "OnlinePipelineEstimate",
    "OfflinePipelineEstimate",
    "simulate_offline_pipeline",
]
