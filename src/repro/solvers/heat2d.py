"""Sequential 2-D heat-equation solver (the paper's data-generating simulation).

The PDE is Equation (2) of the paper::

    dT/dt = alpha * laplacian(T)
    T(x, y, 0) = T_IC
    T(0, y, t) = T_x1,  T(L, y, t) = T_x2
    T(x, 0, t) = T_y1,  T(x, L, t) = T_y2

discretised with second-order central differences in space and an implicit
(backward) Euler scheme in time, exactly as the paper's Fortran solver.  The
implicit system ``(I - dt * alpha * L) u^{n+1} = u^n + dt * alpha * b`` is
solved either with a pre-computed sparse LU factorisation (the system matrix
is constant) or with conjugate gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solvers.base import SolverConfig, TimeSeries
from repro.solvers.stencil import (
    apply_laplacian_field,
    boundary_contribution,
    build_laplacian,
    embed_interior,
)

Array = np.ndarray

#: Parameter sampling range used by the paper: temperatures in [100, 500] K.
PARAMETER_RANGE: Tuple[float, float] = (100.0, 500.0)


@dataclass(frozen=True)
class HeatParameters:
    """The 5-dimensional input vector ``X`` of a heat-equation run.

    Attributes map to the paper's ``(T_IC, T_x1, T_y1, T_x2, T_y2)``: the
    initial temperature and the four Dirichlet boundary temperatures.
    """

    t_ic: float
    t_x1: float
    t_y1: float
    t_x2: float
    t_y2: float

    def as_array(self) -> Array:
        """Parameters in the paper's canonical order."""
        return np.asarray([self.t_ic, self.t_x1, self.t_y1, self.t_x2, self.t_y2])

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        return (self.t_ic, self.t_x1, self.t_y1, self.t_x2, self.t_y2)

    @staticmethod
    def from_array(values: Array) -> "HeatParameters":
        values = np.asarray(values, dtype=float).ravel()
        if values.size != 5:
            raise ValueError(f"expected 5 parameters (T_IC, T_x1, T_y1, T_x2, T_y2), got {values.size}")
        return HeatParameters(*values.tolist())

    def validate_range(self, low: float = PARAMETER_RANGE[0], high: float = PARAMETER_RANGE[1]) -> None:
        """Raise if any temperature falls outside the sampling range."""
        values = self.as_array()
        if np.any(values < low) or np.any(values > high):
            raise ValueError(
                f"parameters {values} outside the allowed range [{low}, {high}]"
            )


@dataclass(frozen=True)
class HeatEquationConfig(SolverConfig):
    """Heat-equation specific configuration: adds the thermal diffusivity."""

    alpha: float = 1.0
    linear_solver: Literal["lu", "cg"] = "lu"
    cg_tol: float = 1e-10
    cg_max_iter: int = 2_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.alpha <= 0:
            raise ValueError("thermal diffusivity alpha must be positive")

    def paper_scale() -> "HeatEquationConfig":  # type: ignore[misc]
        """The full-scale configuration used in the paper (1000x1000 grid)."""
        return HeatEquationConfig(nx=1000, ny=1000, dt=0.01, num_steps=100, alpha=1.0)

    paper_scale = staticmethod(paper_scale)


class HeatEquationSolver:
    """Implicit-Euler finite-difference solver for the 2-D heat equation.

    The solver exposes two entry points:

    * :meth:`run` — run all time steps and return a :class:`TimeSeries`.
    * :meth:`iter_steps` — generator yielding ``(step, time, field)`` one step
      at a time; this is what the online client uses to stream each time step
      to the server *as soon as it is computed*.
    """

    def __init__(self, config: HeatEquationConfig) -> None:
        self.config = config
        cfg = config
        self._laplacian = build_laplacian(cfg.ny, cfg.nx, cfg.dx, cfg.dy)
        identity = sp.identity(cfg.num_interior, format="csr")
        self._system = (identity - cfg.dt * cfg.alpha * self._laplacian).tocsc()
        self._lu: spla.SuperLU | None = None
        if cfg.linear_solver == "lu":
            self._lu = spla.splu(self._system)

    # ------------------------------------------------------------------ steps
    def _boundary_vector(self, params: HeatParameters) -> Array:
        cfg = self.config
        return boundary_contribution(
            cfg.ny,
            cfg.nx,
            cfg.dx,
            cfg.dy,
            west=params.t_x1,
            east=params.t_x2,
            south=params.t_y1,
            north=params.t_y2,
        )

    def _solve(self, rhs: Array) -> Array:
        if self._lu is not None:
            return self._lu.solve(rhs)
        cfg = self.config
        solution, info = spla.cg(
            self._system,
            rhs,
            rtol=cfg.cg_tol,
            maxiter=cfg.cg_max_iter,
        )
        if info != 0:
            raise RuntimeError(f"CG failed to converge (info={info})")
        return solution

    def iter_steps(self, params: HeatParameters) -> Iterator[Tuple[int, float, Array]]:
        """Yield ``(step_index, time, full_field)`` for each produced time step.

        ``step_index`` runs from 1 to ``num_steps``; the initial condition
        (step 0) is not emitted, matching the paper where clients send the
        fields they compute.
        """
        cfg = self.config
        boundary = self._boundary_vector(params)
        interior = np.full(cfg.num_interior, float(params.t_ic))
        for step in range(1, cfg.num_steps + 1):
            rhs = interior + cfg.dt * cfg.alpha * boundary
            interior = self._solve(rhs)
            time = step * cfg.dt
            field = embed_interior(
                interior,
                cfg.ny,
                cfg.nx,
                west=params.t_x1,
                east=params.t_x2,
                south=params.t_y1,
                north=params.t_y2,
            )
            yield step, time, field

    def run(self, params: HeatParameters) -> TimeSeries:
        """Run the full simulation and collect every time step."""
        series = TimeSeries()
        for _, time, field in self.iter_steps(params):
            series.append(time, field)
        return series

    # -------------------------------------------------------------- utilities
    def steady_state(self, params: HeatParameters) -> Array:
        """Solve the stationary problem ``laplacian(T) = 0`` with the same BCs."""
        boundary = self._boundary_vector(params)
        interior = spla.spsolve(self._laplacian.tocsc(), -boundary)
        return embed_interior(
            interior,
            self.config.ny,
            self.config.nx,
            west=params.t_x1,
            east=params.t_x2,
            south=params.t_y1,
            north=params.t_y2,
        )

    @property
    def field_size(self) -> int:
        """Number of scalars per produced field (the surrogate's output size)."""
        return self.config.num_points


class ExplicitHeatSolver:
    """Forward-Euler variant, used to cross-check the implicit solver.

    Only stable when ``dt <= dx^2 dy^2 / (2 alpha (dx^2 + dy^2))``.
    """

    def __init__(self, config: HeatEquationConfig) -> None:
        self.config = config
        stable = explicit_step_stable_dt(config)
        if config.dt > stable:
            raise ValueError(
                f"explicit solver unstable: dt={config.dt} exceeds the stability limit {stable:.3e}"
            )

    def iter_steps(self, params: HeatParameters) -> Iterator[Tuple[int, float, Array]]:
        cfg = self.config
        field = np.full(cfg.grid_shape, float(params.t_ic))
        field[:, 0] = params.t_x1
        field[:, -1] = params.t_x2
        field[0, :] = params.t_y1
        field[-1, :] = params.t_y2
        for step in range(1, cfg.num_steps + 1):
            lap = apply_laplacian_field(field, cfg.dx, cfg.dy)
            field = field.copy()
            field[1:-1, 1:-1] += cfg.dt * cfg.alpha * lap
            yield step, step * cfg.dt, field

    def run(self, params: HeatParameters) -> TimeSeries:
        series = TimeSeries()
        for _, time, field in self.iter_steps(params):
            series.append(time, field)
        return series


def explicit_step_stable_dt(config: HeatEquationConfig) -> float:
    """Largest stable forward-Euler time step for the given discretisation."""
    dx2, dy2 = config.dx**2, config.dy**2
    return dx2 * dy2 / (2.0 * config.alpha * (dx2 + dy2))
