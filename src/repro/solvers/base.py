"""Common solver abstractions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

Array = np.ndarray


@dataclass(frozen=True)
class SolverConfig:
    """Generic space/time discretisation parameters shared by solvers.

    Attributes
    ----------
    nx, ny:
        Number of grid points along x and y (including boundary nodes).
    length_x, length_y:
        Physical extent of the rectangular domain in metres.
    dt:
        Time-step size in seconds (the paper uses 0.01 s).
    num_steps:
        Number of time steps produced per run (the paper uses 100).
    """

    nx: int = 64
    ny: int = 64
    length_x: float = 1.0
    length_y: float = 1.0
    dt: float = 0.01
    num_steps: int = 100

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ValueError("the grid needs at least 3 points per dimension")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.length_x <= 0 or self.length_y <= 0:
            raise ValueError("domain lengths must be positive")

    @property
    def dx(self) -> float:
        """Grid spacing along x."""
        return self.length_x / (self.nx - 1)

    @property
    def dy(self) -> float:
        """Grid spacing along y."""
        return self.length_y / (self.ny - 1)

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """Shape (ny, nx) of the full field, boundaries included."""
        return (self.ny, self.nx)

    @property
    def num_points(self) -> int:
        """Total number of grid points of the full field."""
        return self.nx * self.ny

    @property
    def interior_shape(self) -> Tuple[int, int]:
        """Shape of the interior (unknown) nodes."""
        return (self.ny - 2, self.nx - 2)

    @property
    def num_interior(self) -> int:
        return (self.ny - 2) * (self.nx - 2)

    def times(self) -> Array:
        """Physical times associated with each produced step (t=dt..num_steps*dt)."""
        return self.dt * np.arange(1, self.num_steps + 1)


class TimeSeries:
    """Ordered collection of (time, field) produced by one solver run."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._fields: List[Array] = []

    def append(self, time: float, field: Array) -> None:
        self._times.append(float(time))
        self._fields.append(np.asarray(field))

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Tuple[float, Array]]:
        return iter(zip(self._times, self._fields, strict=True))

    def __getitem__(self, index: int) -> Tuple[float, Array]:
        return self._times[index], self._fields[index]

    @property
    def times(self) -> Array:
        return np.asarray(self._times)

    def stack(self) -> Array:
        """All fields stacked into a (num_steps, ...) array."""
        return np.stack(self._fields, axis=0)

    def final(self) -> Array:
        """The last field of the series."""
        if not self._fields:
            raise IndexError("time series is empty")
        return self._fields[-1]
