"""Finite-difference stencils for the 2-D heat equation.

The unknowns are the interior nodes of an ``ny`` x ``nx`` grid (boundary nodes
carry Dirichlet values).  :func:`build_laplacian` assembles the standard
5-point Laplacian over the interior in CSR format, and
:func:`boundary_contribution` builds the right-hand-side vector holding the
Dirichlet boundary terms that the stencil reaches.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

Array = np.ndarray


def build_laplacian(ny: int, nx: int, dx: float, dy: float) -> sp.csr_matrix:
    """Assemble the 5-point Laplacian over the ``(ny-2) x (nx-2)`` interior nodes.

    The operator maps the flattened interior field (row-major, y first) to its
    discrete Laplacian, assuming homogeneous Dirichlet data (the inhomogeneous
    part is added separately by :func:`boundary_contribution`).
    """
    if ny < 3 or nx < 3:
        raise ValueError("need at least one interior point in each direction")
    niy, nix = ny - 2, nx - 2
    inv_dx2 = 1.0 / dx**2
    inv_dy2 = 1.0 / dy**2

    # 1-D second-difference operators with Dirichlet boundaries.
    def second_difference(n: int, inv_h2: float) -> sp.csr_matrix:
        main = np.full(n, -2.0 * inv_h2)
        off = np.full(n - 1, inv_h2)
        return sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr")

    laplacian = sp.kronsum(
        second_difference(nix, inv_dx2),
        second_difference(niy, inv_dy2),
        format="csr",
    )
    return laplacian.tocsr()


def boundary_contribution(
    ny: int,
    nx: int,
    dx: float,
    dy: float,
    west: float,
    east: float,
    south: float,
    north: float,
) -> Array:
    """Dirichlet boundary terms of the Laplacian for constant edge temperatures.

    Parameters are the boundary temperatures of the four edges:
    ``west`` = T(x=0), ``east`` = T(x=L), ``south`` = T(y=0), ``north`` = T(y=L).
    Returns the flattened vector over interior nodes to *add* to ``L @ u``.
    """
    niy, nix = ny - 2, nx - 2
    inv_dx2 = 1.0 / dx**2
    inv_dy2 = 1.0 / dy**2
    contribution = np.zeros((niy, nix))
    contribution[:, 0] += west * inv_dx2
    contribution[:, -1] += east * inv_dx2
    contribution[0, :] += south * inv_dy2
    contribution[-1, :] += north * inv_dy2
    return contribution.ravel()


def apply_laplacian_field(field: Array, dx: float, dy: float) -> Array:
    """Apply the 5-point Laplacian to the interior of a full field (with boundaries).

    ``field`` has shape (ny, nx) including boundary nodes; the result has shape
    (ny-2, nx-2).  Used by the explicit solver and by tests as an independent
    check of the assembled sparse operator.
    """
    field = np.asarray(field)
    interior = field[1:-1, 1:-1]
    lap = (
        (field[1:-1, :-2] - 2.0 * interior + field[1:-1, 2:]) / dx**2
        + (field[:-2, 1:-1] - 2.0 * interior + field[2:, 1:-1]) / dy**2
    )
    return lap


def embed_interior(
    interior: Array,
    ny: int,
    nx: int,
    west: float,
    east: float,
    south: float,
    north: float,
) -> Array:
    """Build the full (ny, nx) field from interior values and Dirichlet boundaries.

    Corner nodes take the average of their two adjacent edges, a convention
    that only affects plotting/training data, not the numerical solution.
    """
    field = np.empty((ny, nx))
    field[1:-1, 1:-1] = np.asarray(interior).reshape(ny - 2, nx - 2)
    field[:, 0] = west
    field[:, -1] = east
    field[0, :] = south
    field[-1, :] = north
    field[0, 0] = 0.5 * (west + south)
    field[0, -1] = 0.5 * (east + south)
    field[-1, 0] = 0.5 * (west + north)
    field[-1, -1] = 0.5 * (east + north)
    return field


def interior_shape(ny: int, nx: int) -> Tuple[int, int]:
    """Shape of the interior node grid."""
    return ny - 2, nx - 2
