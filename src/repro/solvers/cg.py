"""Distributed conjugate-gradient solver.

The paper's solver is an MPI code; its implicit time step requires solving a
sparse symmetric positive-definite system across ranks.  This module provides
a rank-local CG driver where:

* the matrix-vector product is supplied by the caller (it performs the halo
  exchange internally), and
* all inner products are reduced across ranks through the communicator,

which is exactly the structure of a distributed-memory CG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.parallel.communicator import ThreadCommunicator

Array = np.ndarray

MatVec = Callable[[Array], Array]


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    solution: Array
    iterations: int
    residual_norm: float
    converged: bool


def _global_dot(comm: Optional[ThreadCommunicator], a: Array, b: Array) -> float:
    """Dot product across all ranks (plain dot when no communicator is given)."""
    local = float(np.dot(a, b))
    if comm is None or comm.size == 1:
        return local
    return float(comm.allreduce(np.asarray(local), op="sum"))


def distributed_cg(
    matvec: MatVec,
    rhs: Array,
    comm: Optional[ThreadCommunicator] = None,
    x0: Optional[Array] = None,
    tol: float = 1e-10,
    max_iter: int = 1_000,
) -> CGResult:
    """Solve ``A x = rhs`` with conjugate gradients.

    Parameters
    ----------
    matvec:
        Function computing the local rows of ``A @ x`` given the local rows of
        ``x``; it must internally perform any halo exchange it needs, and every
        rank must call it the same number of times (SPMD discipline).
    rhs:
        Local rows of the right-hand side.
    comm:
        Communicator used for the global reductions; ``None`` for serial use.
    tol:
        Relative tolerance on the residual norm (``||r|| <= tol * ||rhs||``).
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    r = rhs - matvec(x)
    p = r.copy()
    rs_old = _global_dot(comm, r, r)
    rhs_norm = np.sqrt(_global_dot(comm, rhs, rhs))
    if rhs_norm == 0.0:
        return CGResult(solution=np.zeros_like(rhs), iterations=0, residual_norm=0.0, converged=True)
    threshold = (tol * rhs_norm) ** 2

    iterations = 0
    converged = rs_old <= threshold
    while not converged and iterations < max_iter:
        ap = matvec(p)
        alpha = rs_old / _global_dot(comm, p, ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = _global_dot(comm, r, r)
        iterations += 1
        if rs_new <= threshold:
            converged = True
            rs_old = rs_new
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    return CGResult(
        solution=x,
        iterations=iterations,
        residual_norm=float(np.sqrt(rs_old)),
        converged=converged,
    )


def jacobi_smoother(
    matvec: MatVec,
    diagonal: Array,
    rhs: Array,
    comm: Optional[ThreadCommunicator] = None,
    x0: Optional[Array] = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    omega: float = 1.0,
) -> CGResult:
    """Weighted Jacobi iteration, used as a slower but simpler alternative to CG.

    Included because the diagonally dominant implicit heat operator converges
    under Jacobi and the comparison makes a useful ablation of solver choice.
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    rhs_norm = np.sqrt(_global_dot(comm, rhs, rhs))
    if rhs_norm == 0.0:
        return CGResult(solution=np.zeros_like(rhs), iterations=0, residual_norm=0.0, converged=True)

    iterations = 0
    residual_norm = np.inf
    while iterations < max_iter:
        residual = rhs - matvec(x)
        residual_norm = np.sqrt(_global_dot(comm, residual, residual))
        if residual_norm <= tol * rhs_norm:
            return CGResult(x, iterations, float(residual_norm), True)
        x += omega * residual / diagonal
        iterations += 1
    return CGResult(x, iterations, float(residual_norm), False)
