"""Domain-decomposed parallel heat-equation solver.

This mirrors the structure of the paper's MPI Fortran solver: the grid is
block-partitioned, each rank advances its sub-domain, halo rows are exchanged
with neighbouring ranks at every matrix-vector product, the implicit system is
solved with a distributed conjugate gradient, and the full field is gathered
on rank 0 after every time step (the paper performs this gather in situ on the
client before streaming the field to the server).

The decomposition used here is 1-D by rows (blocks of the y dimension), which
keeps the halo pattern simple while still exercising genuine SPMD
communication: ``sendrecv`` halo exchanges, ``allreduce`` dot products and a
final ``gather``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.parallel.communicator import ThreadCommunicator
from repro.parallel.partition import partition_extent
from repro.parallel.spmd import SPMDExecutor
from repro.solvers.base import TimeSeries
from repro.solvers.cg import distributed_cg
from repro.solvers.heat2d import HeatEquationConfig, HeatParameters
from repro.solvers.stencil import embed_interior

Array = np.ndarray

_HALO_UP_TAG = 101
_HALO_DOWN_TAG = 102


class _RankWorker:
    """Per-rank state and kernels of the parallel solver."""

    def __init__(
        self,
        comm: ThreadCommunicator,
        config: HeatEquationConfig,
        params: HeatParameters,
    ) -> None:
        self.comm = comm
        self.config = config
        self.params = params
        niy, nix = config.interior_shape
        self.nix = nix
        self.row_start, self.row_stop = partition_extent(niy, comm.size, comm.rank)
        self.local_rows = self.row_stop - self.row_start
        self.north_rank = comm.rank + 1 if comm.rank + 1 < comm.size else None
        self.south_rank = comm.rank - 1 if comm.rank > 0 else None

        cfg = config
        self.sx = cfg.dt * cfg.alpha / cfg.dx**2
        self.sy = cfg.dt * cfg.alpha / cfg.dy**2
        self.boundary = self._local_boundary_contribution()

    # ----------------------------------------------------------------- setup
    def _local_boundary_contribution(self) -> Array:
        """Local rows of the Dirichlet boundary contribution (scaled by dt*alpha)."""
        cfg = self.config
        params = self.params
        contribution = np.zeros((self.local_rows, self.nix))
        contribution[:, 0] += params.t_x1 / cfg.dx**2
        contribution[:, -1] += params.t_x2 / cfg.dx**2
        niy = cfg.ny - 2
        if self.row_start == 0:
            contribution[0, :] += params.t_y1 / cfg.dy**2
        if self.row_stop == niy:
            contribution[-1, :] += params.t_y2 / cfg.dy**2
        return cfg.dt * cfg.alpha * contribution

    # ------------------------------------------------------------------ halos
    def _exchange_halos(self, local: Array) -> Tuple[Array, Array]:
        """Return the halo rows below (south) and above (north) the local block.

        Physical-boundary halos are zero: the Dirichlet contribution is already
        accounted for by ``self.boundary``, so the operator itself is the
        homogeneous one.
        """
        zeros = np.zeros(self.nix)
        south_halo = zeros
        north_halo = zeros
        comm = self.comm
        # Exchange with the north neighbour (send my top row, receive its bottom row).
        if self.north_rank is not None and self.south_rank is not None:
            north_halo = comm.sendrecv(
                local[-1, :], dest=self.north_rank, source=self.north_rank,
                send_tag=_HALO_UP_TAG, recv_tag=_HALO_DOWN_TAG,
            )
            south_halo = comm.sendrecv(
                local[0, :], dest=self.south_rank, source=self.south_rank,
                send_tag=_HALO_DOWN_TAG, recv_tag=_HALO_UP_TAG,
            )
        elif self.north_rank is not None:
            comm.send(local[-1, :], self.north_rank, tag=_HALO_UP_TAG)
            north_halo = comm.recv(self.north_rank, tag=_HALO_DOWN_TAG)
        elif self.south_rank is not None:
            comm.send(local[0, :], self.south_rank, tag=_HALO_DOWN_TAG)
            south_halo = comm.recv(self.south_rank, tag=_HALO_UP_TAG)
        return south_halo, north_halo

    # ----------------------------------------------------------------- matvec
    def matvec(self, flat: Array) -> Array:
        """Local rows of ``(I - dt * alpha * L) @ u`` with halo exchange."""
        local = flat.reshape(self.local_rows, self.nix)
        south_halo, north_halo = self._exchange_halos(local)

        padded = np.zeros((self.local_rows + 2, self.nix))
        padded[1:-1, :] = local
        padded[0, :] = south_halo
        padded[-1, :] = north_halo

        lap_y = padded[:-2, :] - 2.0 * local + padded[2:, :]
        lap_x = np.zeros_like(local)
        lap_x[:, 1:-1] = local[:, :-2] - 2.0 * local[:, 1:-1] + local[:, 2:]
        lap_x[:, 0] = -2.0 * local[:, 0] + local[:, 1]
        lap_x[:, -1] = local[:, -2] - 2.0 * local[:, -1]

        result = local - self.sx * lap_x - self.sy * lap_y
        return result.ravel()

    # ------------------------------------------------------------------- run
    def run(
        self,
        on_step: Optional[Callable[[int, float, Array], None]] = None,
    ) -> Optional[TimeSeries]:
        """Advance all time steps; rank 0 returns the assembled series."""
        cfg = self.config
        local = np.full((self.local_rows, self.nix), float(self.params.t_ic))
        series = TimeSeries() if self.comm.rank == 0 else None

        for step in range(1, cfg.num_steps + 1):
            rhs = local + self.boundary
            result = distributed_cg(
                self.matvec,
                rhs.ravel(),
                comm=self.comm,
                x0=local.ravel(),
                tol=cfg.cg_tol,
                max_iter=cfg.cg_max_iter,
            )
            if not result.converged:
                raise RuntimeError(
                    f"distributed CG did not converge at step {step} "
                    f"(residual {result.residual_norm:.3e})"
                )
            local = result.solution.reshape(self.local_rows, self.nix)

            gathered = self.comm.gather(local, root=0)
            if self.comm.rank == 0:
                assert gathered is not None
                interior = np.vstack(gathered)
                field = embed_interior(
                    interior,
                    cfg.ny,
                    cfg.nx,
                    west=self.params.t_x1,
                    east=self.params.t_x2,
                    south=self.params.t_y1,
                    north=self.params.t_y2,
                )
                time = step * cfg.dt
                assert series is not None
                series.append(time, field)
                if on_step is not None:
                    on_step(step, time, field)
        return series


class ParallelHeatSolver:
    """Run the domain-decomposed heat solver over ``num_ranks`` SPMD ranks."""

    def __init__(self, config: HeatEquationConfig, num_ranks: int = 2, timeout: float = 300.0) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        niy = config.ny - 2
        if num_ranks > niy:
            raise ValueError(
                f"cannot split {niy} interior rows over {num_ranks} ranks"
            )
        self.config = config
        self.num_ranks = int(num_ranks)
        self.timeout = timeout

    def run(
        self,
        params: HeatParameters,
        on_step: Optional[Callable[[int, float, Array], None]] = None,
    ) -> TimeSeries:
        """Run one simulation; returns the series assembled on rank 0."""

        def rank_main(comm: ThreadCommunicator) -> Optional[TimeSeries]:
            worker = _RankWorker(comm, self.config, params)
            return worker.run(on_step=on_step if comm.rank == 0 else None)

        results: List[Optional[TimeSeries]] = SPMDExecutor(
            self.num_ranks, timeout=self.timeout
        ).run(rank_main).values
        series = results[0]
        assert series is not None
        return series
