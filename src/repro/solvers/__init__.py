"""Numerical solvers: the paper's 2D heat-equation use case.

The paper's data generator is an in-house Fortran90 MPI solver implementing a
finite-difference discretisation of the heat equation with an implicit Euler
scheme on a 1000x1000 Cartesian grid.  This package reimplements it:

* :class:`HeatEquationSolver` — sequential reference solver (sparse implicit
  Euler, direct factorisation or CG), plus an explicit solver for comparison.
* :class:`ParallelHeatSolver` — domain-decomposed solver running one rank per
  thread through the SPMD executor, with halo exchanges and a distributed
  conjugate-gradient linear solve (the structure of the paper's MPI solver).
* analytic/steady-state helpers used for verification.
"""

from repro.solvers.base import SolverConfig, TimeSeries
from repro.solvers.heat2d import (
    HeatEquationConfig,
    HeatEquationSolver,
    HeatParameters,
    explicit_step_stable_dt,
)
from repro.solvers.heat2d_parallel import ParallelHeatSolver
from repro.solvers.analytic import constant_solution, steady_state
from repro.solvers.stencil import build_laplacian, boundary_contribution

__all__ = [
    "SolverConfig",
    "TimeSeries",
    "HeatEquationConfig",
    "HeatParameters",
    "HeatEquationSolver",
    "ParallelHeatSolver",
    "explicit_step_stable_dt",
    "steady_state",
    "constant_solution",
    "build_laplacian",
    "boundary_contribution",
]
