"""Analytic and semi-analytic reference solutions used for solver verification."""

from __future__ import annotations

import numpy as np

from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters

Array = np.ndarray


def constant_solution(config: HeatEquationConfig, temperature: float) -> Array:
    """The exact solution when IC and every boundary share one temperature.

    A spatially constant field is a fixed point of the heat equation, so the
    solver must reproduce it at every time step to round-off accuracy.
    """
    return np.full(config.grid_shape, float(temperature))


def steady_state(config: HeatEquationConfig, params: HeatParameters) -> Array:
    """Stationary solution of the boundary-value problem (Laplace equation).

    For long horizons the transient solution converges to this field; the
    helper simply defers to the solver's sparse Laplace solve so tests can
    check convergence without duplicating the discretisation.
    """
    return HeatEquationSolver(config).steady_state(params)


def separable_mode_decay(
    config: HeatEquationConfig,
    amplitude: float = 1.0,
    mode_x: int = 1,
    mode_y: int = 1,
) -> tuple[Array, float]:
    """Initial field and decay rate of a separable eigenmode of the Laplacian.

    With homogeneous Dirichlet boundaries, ``sin(k_x x) * sin(k_y y)`` decays
    exactly as ``exp(-alpha (k_x^2 + k_y^2) t)``.  Returns the initial interior
    field (full grid with zero boundary) and the continuous decay rate
    ``alpha * (k_x^2 + k_y^2)``; used to measure the temporal order of accuracy
    of the implicit scheme.
    """
    x = np.linspace(0.0, config.length_x, config.nx)
    y = np.linspace(0.0, config.length_y, config.ny)
    kx = mode_x * np.pi / config.length_x
    ky = mode_y * np.pi / config.length_y
    field = amplitude * np.outer(np.sin(ky * y), np.sin(kx * x))
    rate = config.alpha * (kx**2 + ky**2)
    return field, rate
