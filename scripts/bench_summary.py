#!/usr/bin/env python
"""Render a benchmark report as Markdown and gate it against a baseline.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` after the benchmark smoke
steps so every PR shows its measured speedups next to the enforced floors,
and fails the benchmark job when any speedup regresses by more than the
tolerance against the committed trajectory baseline:

    python scripts/bench_summary.py bench_report.json \\
        --baseline BENCH_PR8.json >> "$GITHUB_STEP_SUMMARY"

The gate compares *speedups* (ratios of two timings from the same run), not
absolute rates: ratios stay comparable across runner generations where
msg/s numbers do not.  The absolute msg/s rates each benchmark recorded are
still shown (their own column) so a ratio can be sanity-checked against the
magnitudes behind it.  A result present in the baseline but absent from the
report is reported as a warning, not a failure, so a skipped smoke step does
not mask itself as a pass of the full matrix — but an entry *present* and
malformed (missing ``name``/``speedup``, or a NaN/infinite speedup) fails
the gate outright: silently skipping it would hide a broken recorder.
"""

import argparse
import json
import math
import sys
from pathlib import Path

_RATE_SUFFIX = "msgs_per_s"


def _rate_cell(detail: dict) -> str:
    """Absolute-rate column: every ``*msgs_per_s`` detail key, labelled."""
    rates = []
    for key, value in detail.items():
        if not key.endswith(_RATE_SUFFIX):
            continue
        label = key[: -len(_RATE_SUFFIX)].rstrip("_") or "rate"
        cell = f"{value:,.0f}" if isinstance(value, (int, float)) else str(value)
        rates.append(f"{label} {cell}")
    return "; ".join(rates) or "—"


def validate(report: dict, label: str) -> list:
    """Structural errors that must fail the run instead of being skipped."""
    errors = []
    for index, entry in enumerate(report.get("results", [])):
        name = entry.get("name")
        where = f"{label} entry {index}" + (f" (`{name}`)" if name else "")
        if not name:
            errors.append(f"{where}: missing 'name'")
        speedup = entry.get("speedup")
        if speedup is None:
            errors.append(f"{where}: missing 'speedup'")
        elif not isinstance(speedup, (int, float)) or not math.isfinite(speedup):
            errors.append(f"{where}: non-finite speedup {speedup!r}")
    return errors


def render(report: dict) -> str:
    lines = [
        "## Benchmark speedups",
        "",
        "| benchmark | speedup | enforced floor | msg/s | detail |",
        "|---|---|---|---|---|",
    ]
    for entry in sorted(report.get("results", []), key=lambda e: e.get("name", "")):
        unit = entry.get("unit", "x")
        floor = entry.get("floor")
        floor_cell = f"{floor:g}{unit}" if floor is not None else "—"
        detail = entry.get("detail") or {}
        detail_cell = ", ".join(
            f"{key}={value}" for key, value in detail.items()
            if not key.endswith(_RATE_SUFFIX)
        ) or "—"
        lines.append(
            f"| `{entry['name']}` | {entry['speedup']:g}{unit} | {floor_cell} "
            f"| {_rate_cell(detail)} | {detail_cell} |"
        )
    lines.append("")
    return "\n".join(lines)


def check_trajectory(report: dict, baseline: dict, tolerance: float) -> tuple:
    """Compare report speedups against the baseline trajectory.

    Returns ``(regressions, warnings)``: ``regressions`` lists every
    benchmark whose speedup fell below ``(1 - tolerance) *`` its baseline
    value, ``warnings`` every baseline benchmark missing from the report.
    """
    measured = {
        entry["name"]: entry["speedup"]
        for entry in report.get("results", [])
        if "name" in entry and "speedup" in entry
    }
    regressions = []
    warnings = []
    for entry in sorted(baseline.get("results", []), key=lambda e: e.get("name", "")):
        name = entry.get("name")
        recorded = entry.get("speedup")
        if name is None or recorded is None:
            continue
        if name not in measured:
            warnings.append(f"`{name}`: in baseline ({recorded:g}x) but not measured")
            continue
        floor = (1.0 - tolerance) * recorded
        if measured[name] < floor:
            regressions.append(
                f"`{name}`: {measured[name]:g}x < {floor:g}x "
                f"(baseline {recorded:g}x, tolerance {tolerance:.0%})"
            )
    return regressions, warnings


def render_trajectory(regressions: list, warnings: list, baseline_path: Path) -> str:
    lines = [f"### Trajectory vs `{baseline_path.name}`", ""]
    if regressions:
        lines.append("**REGRESSED** — speedups below the tolerance band:")
        lines.extend(f"- {item}" for item in regressions)
    else:
        lines.append("All measured speedups within tolerance of the baseline.")
    if warnings:
        lines.append("")
        lines.append("Not measured this run:")
        lines.extend(f"- {item}" for item in warnings)
    lines.append("")
    return "\n".join(lines)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="bench report JSON to summarise")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed trajectory JSON to gate against (e.g. BENCH_PR8.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup regression vs the baseline (default 0.2)",
    )
    args = parser.parse_args(argv[1:])
    if not args.report.exists():
        print(f"(no benchmark report at {args.report})")
        return 0
    report = json.loads(args.report.read_text())
    errors = validate(report, args.report.name)
    if errors:
        for item in errors:
            print(f"malformed benchmark entry: {item}", file=sys.stderr)
        return 2
    print(render(report))
    if args.baseline is None:
        return 0
    if not args.baseline.exists():
        print(f"(no baseline at {args.baseline})", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    errors = validate(baseline, args.baseline.name)
    if errors:
        for item in errors:
            print(f"malformed benchmark entry: {item}", file=sys.stderr)
        return 2
    regressions, warnings = check_trajectory(report, baseline, args.tolerance)
    print(render_trajectory(regressions, warnings, args.baseline))
    if regressions:
        for item in regressions:
            print(f"benchmark regression: {item}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
