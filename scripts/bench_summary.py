#!/usr/bin/env python
"""Render a benchmark report (see ``repro.utils.constants``) as a Markdown table.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` after the benchmark smoke
steps so every PR shows its measured speedups next to the enforced floors:

    python scripts/bench_summary.py bench_report.json >> "$GITHUB_STEP_SUMMARY"
"""

import json
import sys
from pathlib import Path


def render(report_path: Path) -> str:
    report = json.loads(report_path.read_text())
    lines = [
        "## Benchmark speedups",
        "",
        "| benchmark | speedup | enforced floor | detail |",
        "|---|---|---|---|",
    ]
    for entry in sorted(report.get("results", []), key=lambda e: e.get("name", "")):
        unit = entry.get("unit", "x")
        floor = entry.get("floor")
        floor_cell = f"{floor:g}{unit}" if floor is not None else "—"
        detail = entry.get("detail") or {}
        detail_cell = ", ".join(f"{key}={value}" for key, value in detail.items()) or "—"
        lines.append(
            f"| `{entry['name']}` | {entry['speedup']:g}{unit} | {floor_cell} | {detail_cell} |"
        )
    lines.append("")
    return "\n".join(lines)


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    report_path = Path(argv[1])
    if not report_path.exists():
        print(f"(no benchmark report at {report_path})")
        return 0
    print(render(report_path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
